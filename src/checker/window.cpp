#include "checker/window.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace rr::checker {

namespace {

using Kind = OpRecord::Kind;

/// op1 (complete) precedes op2 iff op1 responded before op2 was invoked.
bool precedes(const OpRecord& op1, const OpRecord& op2) {
  return op1.complete && op1.responded_at < op2.invoked_at;
}

/// WRITE_k if it is still retained; nullptr when k is below the value floor
/// (the caller has already guaranteed k <= writes_invoked).
const OpRecord* write_by_k(const StreamState& st, std::uint64_t k) {
  if (k <= st.floor_k || k - st.floor_k > st.ring.size()) return nullptr;
  return &st.ring[static_cast<std::size_t>(k - st.floor_k - 1)];
}

/// Max ts among complete writes that precede an op invoked at `invoked`.
/// Ring writes are invocation-ordered with responses ascending over the
/// complete prefix (the writer is sequential), and every evicted write
/// precedes any op still unverified, so the ring answers the query exactly.
Ts max_preceding(const StreamState& st, Time invoked) {
  auto it = std::partition_point(
      st.ring.begin(), st.ring.end(), [invoked](const OpRecord& w) {
        return w.complete && w.responded_at < invoked;
      });
  if (it == st.ring.begin()) return 0;
  return (it - 1)->ts;
}

/// Whether any write overlaps `rd`. Candidates are writes invoked no later
/// than rd's response; among them responses ascend, so only the last can
/// fail to precede rd. Evicted writes all precede everything unverified.
bool has_concurrent_write(const StreamState& st, const OpRecord& rd) {
  auto it = std::partition_point(
      st.ring.begin(), st.ring.end(), [&rd](const OpRecord& w) {
        return w.invoked_at <= rd.responded_at;
      });
  if (it == st.ring.begin()) return false;
  const OpRecord& w = *(it - 1);
  return !(w.complete && w.responded_at < rd.invoked_at);
}

/// Regularity condition (1) with a windowed write table. Returns 1 when the
/// returned <ts, value> names a real write (or the initial value), 0 with
/// `*why` set on a violation, and 2 when ts is below the value floor -- the
/// payload is gone, condition (1) is assumed to hold, and condition (2) is
/// guaranteed to fire instead (a retained later write wholly precedes the
/// read). `final_pass` permits the ts-beyond-all-writes verdict, which
/// during the run is deferred by the hold rule (the write may still come).
int value_was_written(const StreamState& st, const OpRecord& rd,
                      bool final_pass, std::string* why) {
  if (rd.ts == 0) {
    if (!rd.value.empty()) {
      *why = "returned timestamp 0 with non-initial value";
      return 0;
    }
    return 1;
  }
  if (rd.ts > st.writes_invoked) {
    RR_ASSERT_MSG(final_pass,
                  "hold rule must defer reads naming not-yet-invoked writes");
    *why = "returned timestamp larger than any invoked write";
    return 0;
  }
  const OpRecord* wr = write_by_k(st, rd.ts);
  if (wr == nullptr) return 2;
  if (wr->value != rd.value) {
    *why = "returned value differs from the value written at that timestamp";
    return 0;
  }
  return 1;
}

/// Max-ts retired/earlier read that responded before `before`.
const StreamState::ReadMark* skyline_query(
    const std::deque<StreamState::ReadMark>& sky, Time before) {
  auto it = std::partition_point(
      sky.begin(), sky.end(),
      [before](const StreamState::ReadMark& m) { return m.responded < before; });
  if (it == sky.begin()) return nullptr;
  return &*(it - 1);
}

void skyline_insert(std::deque<StreamState::ReadMark>& sky, Time responded,
                    Ts ts, std::string desc) {
  // Dominated by an existing mark (earlier-or-equal response, >= ts)?
  if (const auto* m = skyline_query(sky, responded + 1); m && m->ts >= ts) {
    return;
  }
  // Remove marks the new one dominates, then insert; the skyline stays
  // responded-ascending and ts-ascending.
  auto it = std::partition_point(
      sky.begin(), sky.end(),
      [responded](const StreamState::ReadMark& m) {
        return m.responded < responded;
      });
  while (it != sky.end() && it->ts <= ts) it = sky.erase(it);
  sky.insert(it, StreamState::ReadMark{responded, ts, std::move(desc)});
}

/// Drops summary entries that every still-unverified op is past. `bound` is
/// the invocation time of the oldest unverified op.
void compact(StreamState& st, Time bound) {
  while (st.ring.size() >= 2 && st.ring[0].complete && st.ring[1].complete &&
         st.ring[1].responded_at < bound) {
    st.ring.pop_front();
    ++st.floor_k;
  }
  while (st.read_skyline.size() >= 2 && st.read_skyline[1].responded < bound) {
    st.read_skyline.pop_front();
  }
}

/// Well-formedness, one op at a time in log order. Mirrors
/// check_well_formed: writer timestamps dense, per-client ops non-overlapping.
void wf_observe(const OpRecord& op, std::uint64_t* wf_write_k,
                std::map<std::pair<int, int>, StreamState::ClientTail>* clients,
                std::vector<std::string>* wf_density) {
  if (op.kind == Kind::Write) {
    ++*wf_write_k;
    if (op.complete && op.ts != *wf_write_k) {
      wf_density->push_back("write timestamps not dense: expected " +
                            std::to_string(*wf_write_k) + ", " +
                            describe_op(op));
    }
  }
  auto& tail = (*clients)[{op.kind == Kind::Write ? 0 : 1, op.client}];
  if (tail.has &&
      (!tail.last.complete || tail.last.responded_at > op.invoked_at)) {
    tail.violations.push_back("client ops overlap: " + describe_op(tail.last) +
                              " vs " + describe_op(op));
  }
  tail.last = op;
  tail.has = true;
}

/// Verifies one complete read against the windowed summaries, emitting the
/// batch checkers' exact messages. `sky` is passed explicitly so the final
/// pass can extend a local copy without mutating the stream state.
void verify_read(const StreamState& st,
                 const std::deque<StreamState::ReadMark>& sky,
                 const OpRecord& rd, bool final_pass,
                 std::vector<std::string>* semantic,
                 std::vector<std::string>* inversions,
                 std::uint64_t* reads_checked) {
  RR_ASSERT(rd.complete);
  if (st.property == Property::Safe) {
    // Safety constrains only reads that are concurrent with no write.
    if (has_concurrent_write(st, rd)) return;
    ++*reads_checked;
    const Ts last_preceding = max_preceding(st, rd.invoked_at);
    if (rd.ts != last_preceding) {
      semantic->push_back("safety: read returned ts " + std::to_string(rd.ts) +
                          " but the last preceding write has ts " +
                          std::to_string(last_preceding) + ": " +
                          describe_op(rd));
      return;
    }
    std::string why;
    if (value_was_written(st, rd, final_pass, &why) == 0) {
      semantic->push_back("safety: " + why + ": " + describe_op(rd));
    }
    return;
  }

  ++*reads_checked;
  std::string why;
  const int written = value_was_written(st, rd, final_pass, &why);
  if (written == 0) {
    semantic->push_back("regularity(1): " + why + ": " + describe_op(rd));
  } else {
    // Condition (2): a read succeeding WRITE_k returns val_l with l >= k.
    const Ts maxp = max_preceding(st, rd.invoked_at);
    if (rd.ts < maxp) {
      semantic->push_back("regularity(2): read returned ts " +
                          std::to_string(rd.ts) + " although WRITE with ts " +
                          std::to_string(maxp) +
                          " precedes it: " + describe_op(rd));
    }
    // Condition (3): a read returning val_k does not precede WRITE_k.
    // Below-floor writes were invoked before everything unverified, so the
    // ring covers every write the read could precede.
    if (rd.ts >= 1 && rd.ts <= st.writes_invoked) {
      if (const OpRecord* wr = write_by_k(st, rd.ts);
          wr != nullptr && precedes(rd, *wr)) {
        semantic->push_back(
            "regularity(3): read returned a value whose write was invoked "
            "only after the read responded: " +
            describe_op(rd));
      }
    }
  }

  if (st.property == Property::Atomic) {
    if (const auto* m = skyline_query(sky, rd.invoked_at);
        m != nullptr && rd.ts < m->ts) {
      inversions->push_back("atomicity: new-old inversion: " + m->desc +
                            " precedes " + describe_op(rd));
    }
  }
}

}  // namespace

void stream_on_invocation(StreamState& st, const OpRecord& op,
                          std::size_t handle) {
  st.last_seen = std::max(st.last_seen, op.invoked_at);
  st.incomplete.push_back(handle);
  if (op.kind == Kind::Write) {
    ++st.writes_invoked;
    st.write_k_by_handle.emplace(handle, st.writes_invoked);
    st.ring.push_back(op);
  }
}

void stream_on_response(StreamState& st, const OpRecord& op,
                        std::size_t handle) {
  st.last_seen = std::max(st.last_seen, op.responded_at);
  if (auto it = std::find(st.incomplete.begin(), st.incomplete.end(), handle);
      it != st.incomplete.end()) {
    *it = st.incomplete.back();
    st.incomplete.pop_back();
  }
  if (op.kind == Kind::Write) {
    const auto it = st.write_k_by_handle.find(handle);
    RR_ASSERT(it != st.write_k_by_handle.end());
    const std::uint64_t k = it->second;
    st.write_k_by_handle.erase(it);
    // The entry cannot have been evicted: incomplete writes block the floor.
    OpRecord* slot = const_cast<OpRecord*>(write_by_k(st, k));
    RR_ASSERT(slot != nullptr);
    *slot = op;
  }
}

std::size_t stream_attempt_retire(StreamState& st, std::deque<OpRecord>& ops,
                                  std::size_t base) {
  // Frontier: nothing live responds before its own invocation, and nothing
  // future is invoked before the latest event already seen, so every op that
  // responded strictly before this bound is overlap-free with the rest of
  // the run.
  Time frontier = st.last_seen;
  for (const std::size_t h : st.incomplete) {
    frontier = std::min(frontier, ops[h - base].invoked_at);
  }

  std::size_t count = 0;
  while (!ops.empty()) {
    const OpRecord& op = ops.front();
    if (!op.complete || op.responded_at >= frontier) break;
    // Hold rule: a read naming a write that has not been invoked yet is
    // unverifiable -- the write may still arrive. It (and everything after
    // it) stays resident until the writer catches up or the run ends.
    if (op.kind == Kind::Read && op.ts > st.writes_invoked) break;

    compact(st, op.invoked_at);
    wf_observe(op, &st.wf_write_k, &st.clients, &st.wf_density);
    if (op.kind == Kind::Write) {
      ++st.writes_checked;
    } else {
      verify_read(st, st.read_skyline, op, /*final_pass=*/false, &st.semantic,
                  &st.inversions, &st.reads_checked);
      if (st.property == Property::Atomic) {
        skyline_insert(st.read_skyline, op.responded_at, op.ts,
                       describe_op(op));
      }
    }
    st.retired_fp = fp_fold_op(st.retired_fp, op);
    ++st.retired;
    ops.pop_front();
    ++count;
  }
  return count;
}

CheckReport stream_final_check(const StreamState& st,
                               const std::deque<OpRecord>& ops) {
  // Local continuations of the mutable context so this stays repeatable.
  auto clients = st.clients;
  auto wf_density = st.wf_density;
  auto sky = st.read_skyline;
  std::uint64_t wf_write_k = st.wf_write_k;
  std::vector<std::string> semantic = st.semantic;
  std::vector<std::string> inversions = st.inversions;
  std::uint64_t reads_checked = st.reads_checked;

  for (const auto& op : ops) {
    wf_observe(op, &wf_write_k, &clients, &wf_density);
    if (op.kind == Kind::Read && op.complete) {
      verify_read(st, sky, op, /*final_pass=*/true, &semantic, &inversions,
                  &reads_checked);
      if (st.property == Property::Atomic) {
        skyline_insert(sky, op.responded_at, op.ts, describe_op(op));
      }
    }
  }

  // Assemble like Deployment's batch path: well-formedness first (density,
  // then per-client in map order), then the semantic checker's violations,
  // with the report counts coming from the semantic pass.
  CheckReport report;
  report.reads_checked = static_cast<int>(reads_checked);
  report.writes_checked = static_cast<int>(st.writes_invoked);
  report.violations = std::move(wf_density);
  for (auto& [key, tail] : clients) {
    for (auto& v : tail.violations) report.violations.push_back(std::move(v));
  }
  for (auto& v : semantic) report.violations.push_back(std::move(v));
  for (auto& v : inversions) report.violations.push_back(std::move(v));
  return report;
}

}  // namespace rr::checker
