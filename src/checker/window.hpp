// Windowed streaming checker: the state and verification routines behind
// HistoryLog's windowed mode (checker/history.hpp).
//
// Design. Ops are appended in invocation order. The *frontier* is a lower
// bound on the invocation time of every op that is still running or not yet
// invoked: min(invocation of every incomplete resident op, latest event time
// seen). Any complete op that responded strictly before the frontier can no
// longer overlap anything live or future, so once the whole residual prefix
// up to it is complete it can be verified and retired. What retirement keeps
// is O(window):
//
//   - a dense ring of the writes that reads may still legally return
//     (everything above the value floor: once a later write wholly precedes
//     every live/future op, older writes can only be returned by reads that
//     already violate regularity(2), so their payloads can be dropped);
//   - for atomicity, a "skyline" of retired reads (responded ascending, ts
//     ascending) answering "max ts among reads that responded before T";
//   - per-client tails for the overlap half of well-formedness, and the
//     density counter for writer timestamps;
//   - the running history-fingerprint fold over the retired prefix.
//
// Verification at retirement reuses the batch checkers' exact conditions and
// message strings, and the final check walks the residual in log order, so
// verdicts and fingerprints are bit-identical to batch mode. Two documented
// divergences, both outside what honest protocols can produce: a read
// returning a below-floor timestamp with a *forged value* is reported as the
// regularity(2) violation it also is (batch reports regularity(1)); and an
// atomicity inversion is reported once per late read against the strongest
// retired predecessor rather than once per (r1, r2) pair.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "checker/history.hpp"
#include "common/types.hpp"

namespace rr::checker {

struct StreamState {
  Property property{Property::Regular};
  std::size_t window{0};

  // Dense write table: invocation index k (1-based) identifies WRITE_k.
  // `ring` holds every write with k > floor_k (front is write floor_k + 1),
  // updated in place when the write completes. The front entry is the value
  // floor: the last write already known to wholly precede every op that is
  // still unverified.
  std::uint64_t writes_invoked{0};
  std::uint64_t floor_k{0};
  std::deque<OpRecord> ring;
  /// k for writes whose response is still pending (writer clients are
  /// sequential, so this stays tiny).
  std::unordered_map<std::size_t, std::uint64_t> write_k_by_handle;

  /// Absolute handles of resident incomplete ops (bounded by the number of
  /// client stations -- each runs one op at a time).
  std::vector<std::size_t> incomplete;
  Time last_seen{0};

  /// Retired-read skyline for atomicity: responded ascending, ts strictly
  /// ascending; `desc` is the describe_op() of the read achieving the max
  /// (kept so inversion messages can name the earlier read).
  struct ReadMark {
    Time responded{0};
    Ts ts{0};
    std::string desc;
  };
  std::deque<ReadMark> read_skyline;

  // Well-formedness carried across retirement.
  std::uint64_t wf_write_k{0};  ///< writer-density counter (writes consumed)
  struct ClientTail {
    OpRecord last{};
    bool has{false};
    std::vector<std::string> violations;
  };
  /// Keyed like the batch checker: {0, client} for writers, {1, client}
  /// for readers, so assembling violations in map order reproduces the
  /// batch report's client-major ordering.
  std::map<std::pair<int, int>, ClientTail> clients;
  std::vector<std::string> wf_density;

  /// Semantic violations discovered at retirement, in log order.
  std::vector<std::string> semantic;
  /// Atomicity inversions (batch appends these after all regularity
  /// violations, so they are accumulated separately).
  std::vector<std::string> inversions;

  std::uint64_t retired{0};
  std::uint64_t reads_checked{0};
  std::uint64_t writes_checked{0};
  std::uint64_t retired_fp{kHistoryFpSeed};
};

/// Hooks called by HistoryLog under its lock.
void stream_on_invocation(StreamState& st, const OpRecord& op,
                          std::size_t handle);
void stream_on_response(StreamState& st, const OpRecord& op,
                        std::size_t handle);

/// Verifies and retires the longest eligible prefix of `ops` (popping from
/// the front); returns how many ops were retired. `base` is the absolute
/// handle of ops.front().
std::size_t stream_attempt_retire(StreamState& st, std::deque<OpRecord>& ops,
                                  std::size_t base);

/// The retired prefix's verdict plus a batch-order pass over the residual.
/// Pure: does not mutate `st`, so it can be called repeatedly.
[[nodiscard]] CheckReport stream_final_check(const StreamState& st,
                                             const std::deque<OpRecord>& ops);

}  // namespace rr::checker
