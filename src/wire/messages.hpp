// Wire-level message vocabulary for every protocol in the library.
//
// Messages are plain value types carried by std::variant. Both runtimes (the
// discrete-event simulator and the threaded cluster) move Message values; the
// binary codec (wire/codec.hpp) provides serialization for byte accounting,
// snapshotting and fuzz testing.
//
// Naming follows the paper where a counterpart exists:
//   PW / PW_ACK / W / WRITE_ACK   -- Figure 2/3 (writer rounds)
//   READk / READk_ACK             -- Figure 3/4 (safe storage reader rounds)
//   READk_ACK with history        -- Figure 5/6 (regular storage)
#pragma once

#include <algorithm>
#include <cstdint>
#include <initializer_list>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "common/types.hpp"

namespace rr::wire {

// ---------------------------------------------------------------------------
// Guerraoui-Vukolic safe & regular storage (src/core)
// ---------------------------------------------------------------------------

/// Writer round 1 ("pre-write"): carries the fresh pair in `pw` and the tuple
/// of the *previous* WRITE in `w` (Figure 2 line 5).
struct PwMsg {
  Ts ts{};
  TsVal pw{};
  WTuple w{};
  friend bool operator==(const PwMsg&, const PwMsg&) = default;
};

/// Object's reply to PW: echoes the object's current reader-timestamp row
/// (Figure 3 line 6).
struct PwAckMsg {
  Ts ts{};
  TsrRow tsr{};
  friend bool operator==(const PwAckMsg&, const PwAckMsg&) = default;
};

/// Writer round 2 ("write"): `w` now carries <pw, currenttsrarray>
/// (Figure 2 line 8).
struct WMsg {
  Ts ts{};
  TsVal pw{};
  WTuple w{};
  friend bool operator==(const WMsg&, const WMsg&) = default;
};

struct WAckMsg {
  Ts ts{};
  friend bool operator==(const WAckMsg&, const WAckMsg&) = default;
};

/// Reader round k in {1,2}. `tsr` is the reader's fresh local timestamp; the
/// object stores it into its tsr[j] field before replying (the paper's key
/// "readers write control data" mechanism).
///
/// `cache_ts` implements the Section 5.1 optimization for the regular
/// storage: objects only ship the history suffix starting at cache_ts. The
/// unoptimized regular protocol and the safe protocol send cache_ts = 0.
struct ReadMsg {
  std::uint8_t round{1};
  ReaderTs tsr{};
  Ts cache_ts{0};
  friend bool operator==(const ReadMsg&, const ReadMsg&) = default;
};

/// Object's reply in the *safe* storage: current pw and w fields
/// (Figure 3 line 16).
struct ReadAckMsg {
  std::uint8_t round{1};
  ReaderTs tsr{};
  TsVal pw{};
  WTuple w{};
  friend bool operator==(const ReadAckMsg&, const ReadAckMsg&) = default;
};

/// One history slot of a regular-storage object: <pw, w> at some writer
/// timestamp. `w` is nil between the PW and W rounds of that write
/// (Figure 5 line 6).
struct HistEntry {
  std::optional<TsVal> pw{};
  std::optional<WTuple> w{};
  friend bool operator==(const HistEntry&, const HistEntry&) = default;
};

/// Ordered write history (keyed by writer timestamp).
///
/// Stored as a sorted flat vector searched by binary search: histories are
/// copied into every HIST_ACK and moved through the simulator on every
/// delivery, so the contiguous layout (one allocation, cache-linear scans,
/// O(1) moves) is the hot-path representation. The interface mirrors the
/// std::map subset the protocol code uses; writes keep the vector sorted.
/// Appending at the back (the writer's monotonically increasing timestamps,
/// i.e. the common case) is amortized O(1).
class History {
 public:
  using value_type = std::pair<Ts, HistEntry>;
  using iterator = std::vector<value_type>::iterator;
  using const_iterator = std::vector<value_type>::const_iterator;

  History() = default;
  History(std::initializer_list<value_type> init) {
    for (const auto& [ts, entry] : init) (*this)[ts] = entry;
  }
  /// Builds a history from a sorted slot range in one allocation (used to
  /// ship history suffixes, Section 5.1).
  History(const_iterator first, const_iterator last) : v_(first, last) {}

  [[nodiscard]] std::size_t size() const { return v_.size(); }
  [[nodiscard]] bool empty() const { return v_.empty(); }
  void clear() { v_.clear(); }

  [[nodiscard]] iterator begin() { return v_.begin(); }
  [[nodiscard]] iterator end() { return v_.end(); }
  [[nodiscard]] const_iterator begin() const { return v_.begin(); }
  [[nodiscard]] const_iterator end() const { return v_.end(); }

  /// First slot with timestamp >= ts.
  [[nodiscard]] iterator lower_bound(Ts ts) {
    return std::lower_bound(v_.begin(), v_.end(), ts, KeyLess{});
  }
  [[nodiscard]] const_iterator lower_bound(Ts ts) const {
    return std::lower_bound(v_.begin(), v_.end(), ts, KeyLess{});
  }

  [[nodiscard]] iterator find(Ts ts) {
    auto it = lower_bound(ts);
    return (it != v_.end() && it->first == ts) ? it : v_.end();
  }
  [[nodiscard]] const_iterator find(Ts ts) const {
    auto it = lower_bound(ts);
    return (it != v_.end() && it->first == ts) ? it : v_.end();
  }
  [[nodiscard]] bool contains(Ts ts) const { return find(ts) != v_.end(); }

  /// Entry at slot `ts`, inserted (default-constructed) if absent.
  HistEntry& operator[](Ts ts) {
    if (v_.empty() || ts > v_.back().first) {  // append fast path
      v_.emplace_back(ts, HistEntry{});
      return v_.back().second;
    }
    auto it = lower_bound(ts);
    if (it != v_.end() && it->first == ts) return it->second;
    return v_.emplace(it, ts, HistEntry{})->second;
  }

  [[nodiscard]] const HistEntry& at(Ts ts) const {
    auto it = find(ts);
    if (it == v_.end()) throw std::out_of_range("History::at: no such slot");
    return it->second;
  }

  /// Inserts <ts, entry> unless the slot already exists (std::map::emplace
  /// semantics); returns whether the insertion happened.
  bool emplace(Ts ts, HistEntry entry) {
    if (v_.empty() || ts > v_.back().first) {  // append fast path
      v_.emplace_back(ts, std::move(entry));
      return true;
    }
    auto it = lower_bound(ts);
    if (it != v_.end() && it->first == ts) return false;
    v_.emplace(it, ts, std::move(entry));
    return true;
  }

  iterator erase(const_iterator pos) { return v_.erase(pos); }
  /// Removes [first, last) with a single shift of the kept suffix (used by
  /// history garbage collection to prune the oldest slots in one move).
  iterator erase(const_iterator first, const_iterator last) {
    return v_.erase(first, last);
  }

  friend bool operator==(const History&, const History&) = default;

 private:
  struct KeyLess {
    bool operator()(const value_type& e, Ts ts) const { return e.first < ts; }
  };

  std::vector<value_type> v_;
};

/// Object's reply in the *regular* storage: the history (or the suffix from
/// the reader's cached timestamp onwards, Section 5.1).
struct HistReadAckMsg {
  std::uint8_t round{1};
  ReaderTs tsr{};
  History history{};
  friend bool operator==(const HistReadAckMsg&, const HistReadAckMsg&) = default;
};

// ---------------------------------------------------------------------------
// ABD crash-only baseline (src/baselines/abd.*)
// ---------------------------------------------------------------------------

/// Store a timestamp-value pair (used both by WRITE and by the read-phase
/// write-back). `seq` matches acks to the issuing phase.
struct AbdStoreMsg {
  std::uint64_t seq{};
  TsVal tsval{};
  friend bool operator==(const AbdStoreMsg&, const AbdStoreMsg&) = default;
};

struct AbdStoreAckMsg {
  std::uint64_t seq{};
  friend bool operator==(const AbdStoreAckMsg&, const AbdStoreAckMsg&) = default;
};

struct AbdQueryMsg {
  std::uint64_t seq{};
  friend bool operator==(const AbdQueryMsg&, const AbdQueryMsg&) = default;
};

struct AbdQueryAckMsg {
  std::uint64_t seq{};
  TsVal tsval{};
  friend bool operator==(const AbdQueryAckMsg&, const AbdQueryAckMsg&) = default;
};

// ---------------------------------------------------------------------------
// Byzantine baselines that do not write reader control data
// (polling reads, fast writes; src/baselines/polling.*, fastwrite.*)
// ---------------------------------------------------------------------------

/// Two-phase write used by the polling baseline (phase 1 = pre-write, phase 2
/// = write), after Abraham-Chockler-Keidar-Malkhi (PODC'04).
struct BlWriteMsg {
  std::uint8_t phase{1};
  Ts ts{};
  Value val{};
  friend bool operator==(const BlWriteMsg&, const BlWriteMsg&) = default;
};

struct BlWriteAckMsg {
  std::uint8_t phase{1};
  Ts ts{};
  friend bool operator==(const BlWriteAckMsg&, const BlWriteAckMsg&) = default;
};

/// One-round write used by the fast-write baseline (requires S >= 2t+2b+1).
struct FwWriteMsg {
  Ts ts{};
  Value val{};
  friend bool operator==(const FwWriteMsg&, const FwWriteMsg&) = default;
};

struct FwWriteAckMsg {
  Ts ts{};
  friend bool operator==(const FwWriteAckMsg&, const FwWriteAckMsg&) = default;
};

/// A state-preserving poll: the object replies with its current <pw, w>
/// pair and does not modify any state. `round` lets the reader attribute
/// replies to poll rounds.
struct PollMsg {
  std::uint64_t seq{};
  std::uint32_t round{};
  friend bool operator==(const PollMsg&, const PollMsg&) = default;
};

struct PollAckMsg {
  std::uint64_t seq{};
  std::uint32_t round{};
  TsVal pw{};
  TsVal w{};
  friend bool operator==(const PollAckMsg&, const PollAckMsg&) = default;
};

// ---------------------------------------------------------------------------
// Authenticated baseline (src/baselines/authenticated.*)
// ---------------------------------------------------------------------------

/// 32-byte HMAC-SHA256 over (ts, val) under the writer's key; simulates the
/// digital signatures of Malkhi-Reiter style protocols.
using Mac = std::string;

struct AuthWriteMsg {
  Ts ts{};
  Value val{};
  Mac mac{};
  friend bool operator==(const AuthWriteMsg&, const AuthWriteMsg&) = default;
};

struct AuthWriteAckMsg {
  Ts ts{};
  friend bool operator==(const AuthWriteAckMsg&, const AuthWriteAckMsg&) = default;
};

struct AuthReadMsg {
  std::uint64_t seq{};
  friend bool operator==(const AuthReadMsg&, const AuthReadMsg&) = default;
};

struct AuthReadAckMsg {
  std::uint64_t seq{};
  Ts ts{};
  Value val{};
  Mac mac{};
  friend bool operator==(const AuthReadAckMsg&, const AuthReadAckMsg&) = default;
};

// ---------------------------------------------------------------------------
// Server-centric model (Section 6; src/servercentric)
// ---------------------------------------------------------------------------

/// A reader's single request in the push model.
struct ScReadMsg {
  std::uint64_t seq{};
  friend bool operator==(const ScReadMsg&, const ScReadMsg&) = default;
};

/// An unsolicited server push carrying the server's current <pw, w> view;
/// servers may push repeatedly as their state evolves.
struct ScPushMsg {
  std::uint64_t seq{};
  std::uint32_t epoch{};
  TsVal pw{};
  TsVal w{};
  friend bool operator==(const ScPushMsg&, const ScPushMsg&) = default;
};

/// Server-to-server gossip of writer data in the push model.
struct ScGossipMsg {
  Ts ts{};
  TsVal pw{};
  TsVal w{};
  friend bool operator==(const ScGossipMsg&, const ScGossipMsg&) = default;
};

// ---------------------------------------------------------------------------
// Multi-register sharding (src/harness/shard.*)
// ---------------------------------------------------------------------------

/// Shard envelope: tags a protocol message with the register instance it
/// belongs to. Sharded deployments run K independent SWMR emulations over
/// the same base-object processes; every message between a shard's clients
/// and the objects travels wrapped in a ShardMsg, and the object host
/// demultiplexes on `reg`. The payload is the inner message's canonical
/// encoding, so the envelope is a real wire format (byte accounting and
/// reserialization see exactly what a network would carry).
struct ShardMsg {
  RegisterId reg{0};
  std::string payload{};  ///< wire::encode() of the inner Message
  friend bool operator==(const ShardMsg&, const ShardMsg&) = default;
};

// ---------------------------------------------------------------------------

using Message = std::variant<
    PwMsg, PwAckMsg, WMsg, WAckMsg, ReadMsg, ReadAckMsg, HistReadAckMsg,
    AbdStoreMsg, AbdStoreAckMsg, AbdQueryMsg, AbdQueryAckMsg,
    BlWriteMsg, BlWriteAckMsg, FwWriteMsg, FwWriteAckMsg, PollMsg, PollAckMsg,
    AuthWriteMsg, AuthWriteAckMsg, AuthReadMsg, AuthReadAckMsg,
    ScReadMsg, ScPushMsg, ScGossipMsg, ShardMsg>;

/// Human-readable tag, for traces and test failure messages.
[[nodiscard]] const char* type_name(const Message& m);

}  // namespace rr::wire
