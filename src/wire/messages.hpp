// Wire-level message vocabulary for every protocol in the library.
//
// Messages are plain value types carried by std::variant. Both runtimes (the
// discrete-event simulator and the threaded cluster) move Message values; the
// binary codec (wire/codec.hpp) provides serialization for byte accounting,
// snapshotting and fuzz testing.
//
// Naming follows the paper where a counterpart exists:
//   PW / PW_ACK / W / WRITE_ACK   -- Figure 2/3 (writer rounds)
//   READk / READk_ACK             -- Figure 3/4 (safe storage reader rounds)
//   READk_ACK with history        -- Figure 5/6 (regular storage)
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <optional>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <utility>
#include <variant>
#include <vector>

#include "common/types.hpp"

namespace rr::wire {

// ---------------------------------------------------------------------------
// Guerraoui-Vukolic safe & regular storage (src/core)
// ---------------------------------------------------------------------------

/// Writer round 1 ("pre-write"): carries the fresh pair in `pw` and the tuple
/// of the *previous* WRITE in `w` (Figure 2 line 5).
struct PwMsg {
  Ts ts{};
  TsVal pw{};
  WTuple w{};
  friend bool operator==(const PwMsg&, const PwMsg&) = default;
};

/// Object's reply to PW: echoes the object's current reader-timestamp row
/// (Figure 3 line 6).
struct PwAckMsg {
  Ts ts{};
  TsrRow tsr{};
  friend bool operator==(const PwAckMsg&, const PwAckMsg&) = default;
};

/// Writer round 2 ("write"): `w` now carries <pw, currenttsrarray>
/// (Figure 2 line 8).
struct WMsg {
  Ts ts{};
  TsVal pw{};
  WTuple w{};
  friend bool operator==(const WMsg&, const WMsg&) = default;
};

struct WAckMsg {
  Ts ts{};
  friend bool operator==(const WAckMsg&, const WAckMsg&) = default;
};

/// Reader round k in {1,2}. `tsr` is the reader's fresh local timestamp; the
/// object stores it into its tsr[j] field before replying (the paper's key
/// "readers write control data" mechanism).
///
/// `cache_ts` implements the Section 5.1 optimization for the regular
/// storage: objects only ship the history suffix starting at cache_ts. The
/// unoptimized regular protocol and the safe protocol send cache_ts = 0.
struct ReadMsg {
  std::uint8_t round{1};
  ReaderTs tsr{};
  Ts cache_ts{0};
  friend bool operator==(const ReadMsg&, const ReadMsg&) = default;
};

/// Object's reply in the *safe* storage: current pw and w fields
/// (Figure 3 line 16).
struct ReadAckMsg {
  std::uint8_t round{1};
  ReaderTs tsr{};
  TsVal pw{};
  WTuple w{};
  friend bool operator==(const ReadAckMsg&, const ReadAckMsg&) = default;
};

/// One history slot of a regular-storage object: <pw, w> at some writer
/// timestamp. `w` is nil between the PW and W rounds of that write
/// (Figure 5 line 6).
struct HistEntry {
  std::optional<TsVal> pw{};
  std::optional<WTuple> w{};
  friend bool operator==(const HistEntry&, const HistEntry&) = default;
};

/// Ordered write history (keyed by writer timestamp).
///
/// Stored as a sorted flat ring searched by binary search: the slots live in
/// a flat vector whose live range is [head_, v_.size()). Histories are
/// copied into every HIST_ACK and moved through the simulator on every
/// delivery, so the contiguous layout (one allocation, cache-linear scans,
/// O(1) moves) is the hot-path representation. The interface mirrors the
/// std::map subset the protocol code uses; writes keep the vector sorted.
///
/// The ring exists for the steady state of a garbage-collected regular
/// object (append at the back, collect at the front, forever):
///   - erasing a prefix advances `head_` -- O(erased), the retained suffix
///     never moves -- and *parks* the erased slots' payloads;
///   - appending prefers a parked payload over a fresh allocation, and when
///     the buffer fills it compacts the dead prefix away instead of growing,
///   so a bounded history appends without allocating or copying retained
///   slots. put_pw/put_w/merge additionally reuse the parked string/vector
///   capacity *inside* payloads, which is where the real bytes live.
class History {
 public:
  using value_type = std::pair<Ts, HistEntry>;
  using iterator = std::vector<value_type>::iterator;
  using const_iterator = std::vector<value_type>::const_iterator;

  History() = default;
  History(std::initializer_list<value_type> init) {
    for (const auto& [ts, entry] : init) (*this)[ts] = entry;
  }
  /// Builds a history from a sorted slot range in one allocation (used to
  /// ship history suffixes, Section 5.1).
  History(const_iterator first, const_iterator last) : v_(first, last) {}

  // Value semantics see only the live slots: copies drop the dead prefix
  // and the recycling pools, moves carry the whole arena.
  History(const History& o) : v_(o.begin(), o.end()) {}
  History(History&&) noexcept = default;
  History& operator=(const History& o) {
    if (this != &o) {
      head_ = 0;
      v_.assign(o.begin(), o.end());
    }
    return *this;
  }
  History& operator=(History&&) noexcept = default;
  ~History() = default;

  [[nodiscard]] std::size_t size() const { return v_.size() - head_; }
  [[nodiscard]] bool empty() const { return v_.size() == head_; }
  void clear() {
    for (auto it = v_.begin() + live_off(); it != v_.end(); ++it) {
      spare_.push_back(std::move(it->second));
    }
    v_.clear();
    head_ = 0;
  }

  [[nodiscard]] iterator begin() { return v_.begin() + live_off(); }
  [[nodiscard]] iterator end() { return v_.end(); }
  [[nodiscard]] const_iterator begin() const { return v_.begin() + live_off(); }
  [[nodiscard]] const_iterator end() const { return v_.end(); }

  /// First slot with timestamp >= ts.
  [[nodiscard]] iterator lower_bound(Ts ts) {
    return std::lower_bound(begin(), end(), ts, KeyLess{});
  }
  [[nodiscard]] const_iterator lower_bound(Ts ts) const {
    return std::lower_bound(begin(), end(), ts, KeyLess{});
  }

  [[nodiscard]] iterator find(Ts ts) {
    auto it = lower_bound(ts);
    return (it != v_.end() && it->first == ts) ? it : v_.end();
  }
  [[nodiscard]] const_iterator find(Ts ts) const {
    auto it = lower_bound(ts);
    return (it != v_.end() && it->first == ts) ? it : v_.end();
  }
  [[nodiscard]] bool contains(Ts ts) const { return find(ts) != v_.end(); }

  /// Entry at slot `ts`, inserted (default-constructed) if absent.
  HistEntry& operator[](Ts ts) {
    auto [e, created] = upsert(ts);
    if (created) reset_entry(*e);  // recycled slots carry stale payloads
    return *e;
  }

  [[nodiscard]] const HistEntry& at(Ts ts) const {
    auto it = find(ts);
    if (it == v_.end()) throw std::out_of_range("History::at: no such slot");
    return it->second;
  }

  /// Inserts <ts, entry> unless the slot already exists (std::map::emplace
  /// semantics); returns whether the insertion happened.
  bool emplace(Ts ts, HistEntry entry) {
    auto [e, created] = upsert(ts);
    if (!created) return false;
    reset_entry(*e);
    *e = std::move(entry);
    return true;
  }

  /// Writer PW round: slot `ts` becomes <pw, nil>. The previous occupant's
  /// w-tuple (recycled slot or overwrite) is parked, not destroyed, and the
  /// pw assignment reuses the slot's string capacity: steady-state writes
  /// allocate nothing.
  void put_pw(Ts ts, const TsVal& pw) {
    auto [e, created] = upsert(ts);
    (void)created;
    if (!e->pw) e->pw.emplace();
    *e->pw = pw;
    if (e->w) {
      wspare_.push_back(std::move(*e->w));
      e->w.reset();
    }
  }

  /// Completed slot: `ts` becomes <pw, w>, reusing parked w-tuple capacity
  /// when the slot's w is nil (the PW->W transition of the current write).
  void put_w(Ts ts, const TsVal& pw, const WTuple& w) {
    auto [e, created] = upsert(ts);
    (void)created;
    if (!e->pw) e->pw.emplace();
    *e->pw = pw;
    if (!e->w) {
      if (!wspare_.empty()) {
        e->w.emplace(std::move(wspare_.back()));
        wspare_.pop_back();
      } else {
        e->w.emplace();
      }
    }
    *e->w = w;
  }

  /// Monotone slot-wise union, used by reader-side history mirrors: every
  /// slot of `delta` is copied in, but an engaged field is never replaced
  /// by nil. A slot's pw is immutable and its w only ever fills in under
  /// the (correct, SWMR) writer, so a regression can only come from a stale
  /// or replayed delta and must not punch holes into the mirror.
  void merge(const History& delta) {
    for (const auto& [ts, src] : delta) {
      auto [e, created] = upsert(ts);
      if (created) reset_entry(*e);
      if (src.pw) {
        if (!e->pw) e->pw.emplace();
        *e->pw = *src.pw;
      }
      if (src.w) {
        if (!e->w) {
          if (!wspare_.empty()) {
            e->w.emplace(std::move(wspare_.back()));
            wspare_.pop_back();
          } else {
            e->w.emplace();
          }
        }
        *e->w = *src.w;
      }
    }
  }

  iterator erase(const_iterator pos) { return erase(pos, pos + 1); }
  /// Removes [first, last). A prefix erase (the GC case) parks the payloads
  /// and advances the head: O(erased), the retained suffix never moves.
  iterator erase(const_iterator first, const_iterator last) {
    if (first == last) return v_.begin() + (first - v_.cbegin());
    if (first == v_.cbegin() + live_off()) {
      auto f = v_.begin() + (first - v_.cbegin());
      auto l = v_.begin() + (last - v_.cbegin());
      for (auto it = f; it != l; ++it) spare_.push_back(std::move(it->second));
      head_ = static_cast<std::size_t>(l - v_.begin());
      return l;
    }
    return v_.erase(first, last);
  }

  friend bool operator==(const History& a, const History& b) {
    return std::equal(a.begin(), a.end(), b.begin(), b.end());
  }

 private:
  struct KeyLess {
    bool operator()(const value_type& e, Ts ts) const { return e.first < ts; }
  };

  [[nodiscard]] std::ptrdiff_t live_off() const {
    return static_cast<std::ptrdiff_t>(head_);
  }

  /// Returns the slot for `ts`, creating it if absent; a *created* slot may
  /// carry a recycled payload with stale fields that the caller must set.
  std::pair<HistEntry*, bool> upsert(Ts ts) {
    if (empty() || ts > v_.back().first) return {&append_slot(ts), true};
    auto it = lower_bound(ts);
    if (it != v_.end() && it->first == ts) return {&it->second, false};
    it = v_.emplace(it, ts, HistEntry{});  // out-of-order insert: rare
    return {&it->second, true};
  }

  HistEntry& append_slot(Ts ts) {
    if (v_.size() == v_.capacity() && head_ > 0) {
      // Out of room, but the buffer has a dead prefix: compact it away
      // (O(live) moves, no allocation) instead of growing.
      v_.erase(v_.begin(), v_.begin() + live_off());
      head_ = 0;
    }
    if (!spare_.empty()) {
      v_.emplace_back(ts, std::move(spare_.back()));
      spare_.pop_back();
    } else {
      v_.emplace_back(ts, HistEntry{});
    }
    return v_.back().second;
  }

  void reset_entry(HistEntry& e) {
    e.pw.reset();
    if (e.w) {
      wspare_.push_back(std::move(*e.w));
      e.w.reset();
    }
  }

  std::vector<value_type> v_;  ///< slots; the live range is [head_, size())
  std::size_t head_ = 0;       ///< dead-prefix length (front-erased slots)
  std::vector<HistEntry> spare_;  ///< parked slot payloads, reused on append
  std::vector<WTuple> wspare_;    ///< parked w-tuples (slots reverting to nil)
};

/// Object's reply in the *regular* storage: the history suffix from `since`
/// onwards (Section 5.1, extended to ack-driven deltas -- see HistReadMsg).
/// `resync` is set when garbage collection evicted slots the reader asked
/// for, i.e. the suffix starts *above* the requested floor: the reader must
/// drop its mirror of this object and rebuild from this reply instead of
/// silently treating the hole as denials.
struct HistReadAckMsg {
  std::uint8_t round{1};
  ReaderTs tsr{};
  History history{};
  Ts since{0};             ///< first slot the shipped suffix covers
  std::uint8_t resync{0};  ///< 1 = GC evicted past the requested floor
  friend bool operator==(const HistReadAckMsg&, const HistReadAckMsg&) = default;
};

// ---------------------------------------------------------------------------
// ABD crash-only baseline (src/baselines/abd.*)
// ---------------------------------------------------------------------------

/// Store a timestamp-value pair (used both by WRITE and by the read-phase
/// write-back). `seq` matches acks to the issuing phase.
struct AbdStoreMsg {
  std::uint64_t seq{};
  TsVal tsval{};
  friend bool operator==(const AbdStoreMsg&, const AbdStoreMsg&) = default;
};

struct AbdStoreAckMsg {
  std::uint64_t seq{};
  friend bool operator==(const AbdStoreAckMsg&, const AbdStoreAckMsg&) = default;
};

struct AbdQueryMsg {
  std::uint64_t seq{};
  friend bool operator==(const AbdQueryMsg&, const AbdQueryMsg&) = default;
};

struct AbdQueryAckMsg {
  std::uint64_t seq{};
  TsVal tsval{};
  friend bool operator==(const AbdQueryAckMsg&, const AbdQueryAckMsg&) = default;
};

// ---------------------------------------------------------------------------
// Byzantine baselines that do not write reader control data
// (polling reads, fast writes; src/baselines/polling.*, fastwrite.*)
// ---------------------------------------------------------------------------

/// Two-phase write used by the polling baseline (phase 1 = pre-write, phase 2
/// = write), after Abraham-Chockler-Keidar-Malkhi (PODC'04).
struct BlWriteMsg {
  std::uint8_t phase{1};
  Ts ts{};
  Value val{};
  friend bool operator==(const BlWriteMsg&, const BlWriteMsg&) = default;
};

struct BlWriteAckMsg {
  std::uint8_t phase{1};
  Ts ts{};
  friend bool operator==(const BlWriteAckMsg&, const BlWriteAckMsg&) = default;
};

/// One-round write used by the fast-write baseline (requires S >= 2t+2b+1).
struct FwWriteMsg {
  Ts ts{};
  Value val{};
  friend bool operator==(const FwWriteMsg&, const FwWriteMsg&) = default;
};

struct FwWriteAckMsg {
  Ts ts{};
  friend bool operator==(const FwWriteAckMsg&, const FwWriteAckMsg&) = default;
};

/// A state-preserving poll: the object replies with its current <pw, w>
/// pair and does not modify any state. `round` lets the reader attribute
/// replies to poll rounds.
struct PollMsg {
  std::uint64_t seq{};
  std::uint32_t round{};
  friend bool operator==(const PollMsg&, const PollMsg&) = default;
};

struct PollAckMsg {
  std::uint64_t seq{};
  std::uint32_t round{};
  TsVal pw{};
  TsVal w{};
  friend bool operator==(const PollAckMsg&, const PollAckMsg&) = default;
};

// ---------------------------------------------------------------------------
// Authenticated baseline (src/baselines/authenticated.*)
// ---------------------------------------------------------------------------

/// 32-byte HMAC-SHA256 over (ts, val) under the writer's key; simulates the
/// digital signatures of Malkhi-Reiter style protocols.
using Mac = std::string;

struct AuthWriteMsg {
  Ts ts{};
  Value val{};
  Mac mac{};
  friend bool operator==(const AuthWriteMsg&, const AuthWriteMsg&) = default;
};

struct AuthWriteAckMsg {
  Ts ts{};
  friend bool operator==(const AuthWriteAckMsg&, const AuthWriteAckMsg&) = default;
};

struct AuthReadMsg {
  std::uint64_t seq{};
  friend bool operator==(const AuthReadMsg&, const AuthReadMsg&) = default;
};

struct AuthReadAckMsg {
  std::uint64_t seq{};
  Ts ts{};
  Value val{};
  Mac mac{};
  friend bool operator==(const AuthReadAckMsg&, const AuthReadAckMsg&) = default;
};

// ---------------------------------------------------------------------------
// Server-centric model (Section 6; src/servercentric)
// ---------------------------------------------------------------------------

/// A reader's single request in the push model.
struct ScReadMsg {
  std::uint64_t seq{};
  friend bool operator==(const ScReadMsg&, const ScReadMsg&) = default;
};

/// An unsolicited server push carrying the server's current <pw, w> view;
/// servers may push repeatedly as their state evolves.
struct ScPushMsg {
  std::uint64_t seq{};
  std::uint32_t epoch{};
  TsVal pw{};
  TsVal w{};
  friend bool operator==(const ScPushMsg&, const ScPushMsg&) = default;
};

/// Server-to-server gossip of writer data in the push model.
struct ScGossipMsg {
  Ts ts{};
  TsVal pw{};
  TsVal w{};
  friend bool operator==(const ScGossipMsg&, const ScGossipMsg&) = default;
};

// ---------------------------------------------------------------------------
// Multi-register sharding (src/harness/shard.*)
// ---------------------------------------------------------------------------

/// Shard envelope: tags a protocol message with the register instance it
/// belongs to. Sharded deployments run K independent SWMR emulations over
/// the same base-object processes; every message between a shard's clients
/// and the objects travels wrapped in a ShardMsg, and the object host
/// demultiplexes on `reg`. The payload is the inner message's canonical
/// encoding, so the envelope is a real wire format (byte accounting and
/// reserialization see exactly what a network would carry).
struct ShardMsg {
  RegisterId reg{0};
  std::string payload{};  ///< wire::encode() of the inner Message
  friend bool operator==(const ShardMsg&, const ShardMsg&) = default;
};

// ---------------------------------------------------------------------------

/// Reader round k in {1,2} of the *regular* storage. Replaces ReadMsg for
/// regular reads (ReadMsg stays the safe-storage request, byte-identical to
/// before): on top of the Section 5.1 `cache_ts`, the reader reports `have`,
/// the top slot of the history mirror it has already merged from this
/// object. The object ships only slots >= max(have, cache_ts) -- inclusive,
/// because the top slot can still mutate (its w fills in) while everything
/// below the object's write timestamp is frozen -- and treats that floor as
/// the reader's acked watermark for prefix garbage collection. A lost reply
/// self-heals: the reader's `have` stays low, so the next round re-ships.
struct HistReadMsg {
  std::uint8_t round{1};
  ReaderTs tsr{};
  Ts cache_ts{0};  ///< Section 5.1 cached timestamp (0 = no cache)
  Ts have{0};      ///< top history slot already merged from this object
  friend bool operator==(const HistReadMsg&, const HistReadMsg&) = default;
};

// ---------------------------------------------------------------------------

// New alternatives go at the END: the codec tag and the NetStats per-type
// indices are the variant index, so appending preserves every existing
// wire byte and accounting slot.
using Message = std::variant<
    PwMsg, PwAckMsg, WMsg, WAckMsg, ReadMsg, ReadAckMsg, HistReadAckMsg,
    AbdStoreMsg, AbdStoreAckMsg, AbdQueryMsg, AbdQueryAckMsg,
    BlWriteMsg, BlWriteAckMsg, FwWriteMsg, FwWriteAckMsg, PollMsg, PollAckMsg,
    AuthWriteMsg, AuthWriteAckMsg, AuthReadMsg, AuthReadAckMsg,
    ScReadMsg, ScPushMsg, ScGossipMsg, ShardMsg, HistReadMsg>;

/// Compile-time variant index of a Message alternative. The canonical way
/// to index NetStats::messages_by_type / bytes_by_type: codec tags equal
/// variant indices, so a hardcoded integer would silently misattribute
/// bytes after a variant reorder.
template <class T, std::size_t I = 0>
[[nodiscard]] constexpr std::size_t message_index() {
  static_assert(I < std::variant_size_v<Message>,
                "T is not a Message alternative");
  if constexpr (std::is_same_v<std::variant_alternative_t<I, Message>, T>) {
    return I;
  } else {
    return message_index<T, I + 1>();
  }
}

/// Human-readable tag, for traces and test failure messages.
[[nodiscard]] const char* type_name(const Message& m);

}  // namespace rr::wire
