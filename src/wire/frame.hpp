// Length-prefixed framing of wire messages over a byte stream.
//
// A TCP connection gives the net backend a byte pipe, not a message pipe:
// reads can split a message across arbitrary boundaries and a buggy or
// malicious peer can write garbage. Each frame is
//
//   [magic u32 LE][payload length u32 LE][payload = wire::encode() bytes]
//
// and FrameDecoder reassembles frames from partial reads, enforcing three
// robustness rules (ISSUE 10: truncated/corrupt frames are rejected and
// counted, never fatal):
//   1. A payload that fails wire::decode() is counted (bad_payload) and
//      skipped -- framing is still intact, the stream continues.
//   2. A bad magic or an oversized length prefix poisons the stream: frame
//      boundaries are lost and resync is not attempted; the owner must drop
//      the connection (and may reconnect with a fresh decoder).
//   3. mid_frame() exposes whether a partial frame is pending, so the owner
//      can enforce a per-frame read timeout (a peer that goes silent
//      mid-frame is indistinguishable from a truncating one).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "wire/codec.hpp"
#include "wire/messages.hpp"

namespace rr::wire {

/// First four bytes of every frame ("RRF1", little-endian on the wire).
constexpr std::uint32_t kFrameMagic = 0x31465252u;

/// Frame header: magic + payload length, both u32 little-endian.
constexpr std::size_t kFrameHeaderBytes = 8;

/// Default cap on one frame's payload. The largest honest message is a
/// full-history ack; 16 MiB is orders of magnitude above any real encoding,
/// so a larger length prefix is treated as hostile, not as a big message.
constexpr std::uint32_t kMaxFramePayload = 16u << 20;

/// Frames a message: header + wire::encode() payload.
[[nodiscard]] std::string encode_frame(const Message& m);

/// Frames an already-encoded payload (the net backend encodes once for byte
/// accounting and reuses the bytes for duplicate copies).
[[nodiscard]] std::string wrap_frame(std::string_view payload);

/// Decoder-side robustness counters.
struct FrameStats {
  std::uint64_t frames{0};       ///< well-formed messages handed to the sink
  std::uint64_t bad_payload{0};  ///< framed bytes wire::decode() rejected
  std::uint64_t bad_magic{0};    ///< header magic mismatch (stream poisoned)
  std::uint64_t oversized{0};    ///< length prefix above the cap (poisoned)
};

/// Incremental frame reassembler for one connection. Feed it raw bytes in
/// arbitrary chunks; it invokes the sink once per complete, well-formed
/// message. Never throws, never reads out of bounds, never trusts a length
/// prefix beyond the cap.
class FrameDecoder {
 public:
  explicit FrameDecoder(std::size_t max_payload = kMaxFramePayload)
      : max_payload_(max_payload) {}

  /// Consumes `n` bytes. Returns false once the stream is poisoned (bad
  /// magic / oversized length): the connection must be dropped. Further
  /// feed() calls on a poisoned decoder are no-ops returning false.
  bool feed(const char* data, std::size_t n,
            const std::function<void(Message&&)>& sink);

  /// True when frame boundaries have been lost (drop the connection).
  [[nodiscard]] bool poisoned() const { return poisoned_; }

  /// True while a partial frame (header or payload) is buffered -- the hook
  /// for per-frame read timeouts.
  [[nodiscard]] bool mid_frame() const {
    return !poisoned_ && buf_.size() > head_;
  }

  [[nodiscard]] const FrameStats& stats() const { return stats_; }

  /// Forgets buffered bytes and the poisoned flag (fresh connection);
  /// counters survive so per-channel totals accumulate across reconnects.
  void reset() {
    buf_.clear();
    head_ = 0;
    poisoned_ = false;
  }

 private:
  std::string buf_;
  std::size_t head_{0};  // consumed prefix of buf_, compacted lazily
  std::size_t max_payload_;
  bool poisoned_{false};
  FrameStats stats_;
};

}  // namespace rr::wire
