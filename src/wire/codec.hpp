// Binary serialization of wire messages.
//
// Little-endian fixed-width scalars, u32 length prefixes for strings and
// containers, u8 presence flags for optionals, u8 variant tag. decode()
// returns nullopt on any malformed input (trailing bytes, truncation,
// oversized length prefixes) -- it never throws and never reads out of
// bounds, which makes it safe to fuzz and safe against malicious bytes.
//
// The codec serves three purposes:
//   1. byte accounting for the Section 5.1 message-size experiments,
//   2. exact state/message snapshots in the lower-bound orchestrator
//      (indistinguishability of runs is checked on encoded bytes),
//   3. a realistic substrate boundary: both runtimes can optionally round-
//      trip every message through bytes to prove protocol code never relies
//      on object identity.
#pragma once

#include <cstddef>
#include <optional>
#include <string>

#include "wire/messages.hpp"

namespace rr::wire {

/// Serializes a message (always succeeds).
[[nodiscard]] std::string encode(const Message& m);

/// Parses a message; nullopt on malformed input.
[[nodiscard]] std::optional<Message> decode(const std::string& bytes);

/// Size in bytes of the encoded form (the metric used for bytes-on-wire
/// accounting).
[[nodiscard]] std::size_t encoded_size(const Message& m);

}  // namespace rr::wire
