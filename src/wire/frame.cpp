#include "wire/frame.hpp"

#include <cstring>

namespace rr::wire {

namespace {

void put_u32(std::string& out, std::uint32_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
  out.push_back(static_cast<char>((v >> 16) & 0xff));
  out.push_back(static_cast<char>((v >> 24) & 0xff));
}

std::uint32_t get_u32(const char* p) {
  return static_cast<std::uint32_t>(static_cast<unsigned char>(p[0])) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(p[1])) << 8) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(p[2])) << 16) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(p[3])) << 24);
}

}  // namespace

std::string encode_frame(const Message& m) { return wrap_frame(encode(m)); }

std::string wrap_frame(std::string_view payload) {
  std::string out;
  out.reserve(kFrameHeaderBytes + payload.size());
  put_u32(out, kFrameMagic);
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  out.append(payload.data(), payload.size());
  return out;
}

bool FrameDecoder::feed(const char* data, std::size_t n,
                        const std::function<void(Message&&)>& sink) {
  if (poisoned_) return false;
  buf_.append(data, n);
  while (buf_.size() - head_ >= kFrameHeaderBytes) {
    const char* hdr = buf_.data() + head_;
    if (get_u32(hdr) != kFrameMagic) {
      stats_.bad_magic++;
      poisoned_ = true;
      return false;
    }
    const std::uint32_t len = get_u32(hdr + 4);
    if (len > max_payload_) {
      stats_.oversized++;
      poisoned_ = true;
      return false;
    }
    if (buf_.size() - head_ < kFrameHeaderBytes + len) break;  // partial
    // decode() takes const std::string& -- one payload copy per frame. The
    // net path allocates per message anyway (sockets dominate); the DES hot
    // path never goes through here.
    const std::string payload =
        buf_.substr(head_ + kFrameHeaderBytes, len);
    head_ += kFrameHeaderBytes + len;
    if (auto msg = decode(payload)) {
      stats_.frames++;
      sink(std::move(*msg));
    } else {
      stats_.bad_payload++;  // framing intact: skip this frame, keep going
    }
  }
  // Compact the consumed prefix once it dominates the buffer (amortized
  // O(1) per byte; keeps a long-lived connection's buffer bounded by the
  // largest in-flight frame).
  if (head_ > 4096 && head_ * 2 >= buf_.size()) {
    buf_.erase(0, head_);
    head_ = 0;
  }
  return true;
}

}  // namespace rr::wire
