#include "wire/codec.hpp"

#include <cstdint>
#include <cstring>
#include <limits>

namespace rr::wire {
namespace {

// ---------------------------------------------------------------------------
// Primitive writer / reader
// ---------------------------------------------------------------------------

class ByteWriter {
 public:
  void u8(std::uint8_t v) { out_.push_back(static_cast<char>(v)); }

  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) out_.push_back(static_cast<char>(v >> (8 * i)));
  }

  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) out_.push_back(static_cast<char>(v >> (8 * i)));
  }

  void bytes(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    out_.append(s);
  }

  [[nodiscard]] std::string take() && { return std::move(out_); }

 private:
  std::string out_;
};

/// Drop-in ByteWriter replacement that only counts: encoded_size() runs the
/// exact same put_body() code as encode() but never materializes bytes, so
/// per-message byte accounting in the simulator hot loop is allocation-free.
class SizeWriter {
 public:
  void u8(std::uint8_t) { n_ += 1; }
  void u32(std::uint32_t) { n_ += 4; }
  void u64(std::uint64_t) { n_ += 8; }
  void bytes(const std::string& s) { n_ += 4 + s.size(); }

  [[nodiscard]] std::size_t size() const { return n_; }

 private:
  std::size_t n_ = 0;
};

class ByteReader {
 public:
  explicit ByteReader(const std::string& in) : in_(in) {}

  bool u8(std::uint8_t& v) {
    if (pos_ + 1 > in_.size()) return fail();
    v = static_cast<std::uint8_t>(in_[pos_++]);
    return true;
  }

  bool u32(std::uint32_t& v) {
    if (pos_ + 4 > in_.size()) return fail();
    v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(static_cast<unsigned char>(in_[pos_++]))
           << (8 * i);
    }
    return true;
  }

  bool u64(std::uint64_t& v) {
    if (pos_ + 8 > in_.size()) return fail();
    v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(static_cast<unsigned char>(in_[pos_++]))
           << (8 * i);
    }
    return true;
  }

  bool bytes(std::string& s) {
    std::uint32_t n = 0;
    if (!u32(n)) return false;
    if (pos_ + n > in_.size()) return fail();
    s.assign(in_, pos_, n);
    pos_ += n;
    return true;
  }

  [[nodiscard]] bool exhausted() const { return ok_ && pos_ == in_.size(); }
  [[nodiscard]] bool ok() const { return ok_; }

 private:
  bool fail() {
    ok_ = false;
    return false;
  }

  const std::string& in_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

// Containers are length-prefixed; cap element counts so a malicious 4-byte
// prefix cannot trigger a huge allocation before the truncation check fires.
constexpr std::uint32_t kMaxElems = 1u << 20;

// ---------------------------------------------------------------------------
// Composite encoders / decoders
// ---------------------------------------------------------------------------

template <class W>
void put(W& w, const TsVal& v) {
  w.u64(v.ts);
  w.bytes(v.val);
}

bool get(ByteReader& r, TsVal& v) { return r.u64(v.ts) && r.bytes(v.val); }

template <class W>
void put(W& w, const TsrRow& row) {
  w.u32(static_cast<std::uint32_t>(row.size()));
  for (auto x : row) w.u64(x);
}

bool get(ByteReader& r, TsrRow& row) {
  std::uint32_t n = 0;
  if (!r.u32(n) || n > kMaxElems) return false;
  row.clear();
  row.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    std::uint64_t x = 0;
    if (!r.u64(x)) return false;
    row.push_back(x);
  }
  return true;
}

template <class W>
void put(W& w, const TsrArray& arr) {
  w.u32(static_cast<std::uint32_t>(arr.size()));
  for (const auto& entry : arr) {
    w.u8(entry.has_value() ? 1 : 0);
    if (entry) put(w, *entry);
  }
}

bool get(ByteReader& r, TsrArray& arr) {
  std::uint32_t n = 0;
  if (!r.u32(n) || n > kMaxElems) return false;
  arr.clear();
  arr.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    std::uint8_t flag = 0;
    if (!r.u8(flag) || flag > 1) return false;
    if (flag) {
      TsrRow row;
      if (!get(r, row)) return false;
      arr.emplace_back(std::move(row));
    } else {
      arr.emplace_back(std::nullopt);
    }
  }
  return true;
}

template <class W>
void put(W& w, const WTuple& t) {
  put(w, t.tsval);
  put(w, t.tsrarray);
}

bool get(ByteReader& r, WTuple& t) {
  return get(r, t.tsval) && get(r, t.tsrarray);
}

template <class W>
void put(W& w, const HistEntry& e) {
  w.u8(e.pw.has_value() ? 1 : 0);
  if (e.pw) put(w, *e.pw);
  w.u8(e.w.has_value() ? 1 : 0);
  if (e.w) put(w, *e.w);
}

bool get(ByteReader& r, HistEntry& e) {
  std::uint8_t flag = 0;
  if (!r.u8(flag) || flag > 1) return false;
  if (flag) {
    TsVal v;
    if (!get(r, v)) return false;
    e.pw = std::move(v);
  } else {
    e.pw.reset();
  }
  if (!r.u8(flag) || flag > 1) return false;
  if (flag) {
    WTuple t;
    if (!get(r, t)) return false;
    e.w = std::move(t);
  } else {
    e.w.reset();
  }
  return true;
}

template <class W>
void put(W& w, const History& h) {
  w.u32(static_cast<std::uint32_t>(h.size()));
  for (const auto& [ts, entry] : h) {
    w.u64(ts);
    put(w, entry);
  }
}

bool get(ByteReader& r, History& h) {
  std::uint32_t n = 0;
  if (!r.u32(n) || n > kMaxElems) return false;
  h.clear();
  for (std::uint32_t i = 0; i < n; ++i) {
    Ts ts = 0;
    HistEntry entry;
    if (!r.u64(ts) || !get(r, entry)) return false;
    h.emplace(ts, std::move(entry));
  }
  return true;
}

// ---------------------------------------------------------------------------
// Per-message bodies
// ---------------------------------------------------------------------------

template <class W>
void put_body(W& w, const PwMsg& m) {
  w.u64(m.ts);
  put(w, m.pw);
  put(w, m.w);
}
bool get_body(ByteReader& r, PwMsg& m) {
  return r.u64(m.ts) && get(r, m.pw) && get(r, m.w);
}

template <class W>
void put_body(W& w, const PwAckMsg& m) {
  w.u64(m.ts);
  put(w, m.tsr);
}
bool get_body(ByteReader& r, PwAckMsg& m) {
  return r.u64(m.ts) && get(r, m.tsr);
}

template <class W>
void put_body(W& w, const WMsg& m) {
  w.u64(m.ts);
  put(w, m.pw);
  put(w, m.w);
}
bool get_body(ByteReader& r, WMsg& m) {
  return r.u64(m.ts) && get(r, m.pw) && get(r, m.w);
}

template <class W>
void put_body(W& w, const WAckMsg& m) { w.u64(m.ts); }
bool get_body(ByteReader& r, WAckMsg& m) { return r.u64(m.ts); }

template <class W>
void put_body(W& w, const ReadMsg& m) {
  w.u8(m.round);
  w.u64(m.tsr);
  w.u64(m.cache_ts);
}
bool get_body(ByteReader& r, ReadMsg& m) {
  return r.u8(m.round) && r.u64(m.tsr) && r.u64(m.cache_ts);
}

template <class W>
void put_body(W& w, const ReadAckMsg& m) {
  w.u8(m.round);
  w.u64(m.tsr);
  put(w, m.pw);
  put(w, m.w);
}
bool get_body(ByteReader& r, ReadAckMsg& m) {
  return r.u8(m.round) && r.u64(m.tsr) && get(r, m.pw) && get(r, m.w);
}

template <class W>
void put_body(W& w, const HistReadAckMsg& m) {
  w.u8(m.round);
  w.u64(m.tsr);
  put(w, m.history);
  w.u64(m.since);
  w.u8(m.resync);
}
bool get_body(ByteReader& r, HistReadAckMsg& m) {
  return r.u8(m.round) && r.u64(m.tsr) && get(r, m.history) &&
         r.u64(m.since) && r.u8(m.resync);
}

template <class W>
void put_body(W& w, const HistReadMsg& m) {
  w.u8(m.round);
  w.u64(m.tsr);
  w.u64(m.cache_ts);
  w.u64(m.have);
}
bool get_body(ByteReader& r, HistReadMsg& m) {
  return r.u8(m.round) && r.u64(m.tsr) && r.u64(m.cache_ts) && r.u64(m.have);
}

template <class W>
void put_body(W& w, const AbdStoreMsg& m) {
  w.u64(m.seq);
  put(w, m.tsval);
}
bool get_body(ByteReader& r, AbdStoreMsg& m) {
  return r.u64(m.seq) && get(r, m.tsval);
}

template <class W>
void put_body(W& w, const AbdStoreAckMsg& m) { w.u64(m.seq); }
bool get_body(ByteReader& r, AbdStoreAckMsg& m) { return r.u64(m.seq); }

template <class W>
void put_body(W& w, const AbdQueryMsg& m) { w.u64(m.seq); }
bool get_body(ByteReader& r, AbdQueryMsg& m) { return r.u64(m.seq); }

template <class W>
void put_body(W& w, const AbdQueryAckMsg& m) {
  w.u64(m.seq);
  put(w, m.tsval);
}
bool get_body(ByteReader& r, AbdQueryAckMsg& m) {
  return r.u64(m.seq) && get(r, m.tsval);
}

template <class W>
void put_body(W& w, const BlWriteMsg& m) {
  w.u8(m.phase);
  w.u64(m.ts);
  w.bytes(m.val);
}
bool get_body(ByteReader& r, BlWriteMsg& m) {
  return r.u8(m.phase) && r.u64(m.ts) && r.bytes(m.val);
}

template <class W>
void put_body(W& w, const BlWriteAckMsg& m) {
  w.u8(m.phase);
  w.u64(m.ts);
}
bool get_body(ByteReader& r, BlWriteAckMsg& m) {
  return r.u8(m.phase) && r.u64(m.ts);
}

template <class W>
void put_body(W& w, const FwWriteMsg& m) {
  w.u64(m.ts);
  w.bytes(m.val);
}
bool get_body(ByteReader& r, FwWriteMsg& m) {
  return r.u64(m.ts) && r.bytes(m.val);
}

template <class W>
void put_body(W& w, const FwWriteAckMsg& m) { w.u64(m.ts); }
bool get_body(ByteReader& r, FwWriteAckMsg& m) { return r.u64(m.ts); }

template <class W>
void put_body(W& w, const PollMsg& m) {
  w.u64(m.seq);
  w.u32(m.round);
}
bool get_body(ByteReader& r, PollMsg& m) {
  return r.u64(m.seq) && r.u32(m.round);
}

template <class W>
void put_body(W& w, const PollAckMsg& m) {
  w.u64(m.seq);
  w.u32(m.round);
  put(w, m.pw);
  put(w, m.w);
}
bool get_body(ByteReader& r, PollAckMsg& m) {
  return r.u64(m.seq) && r.u32(m.round) && get(r, m.pw) && get(r, m.w);
}

template <class W>
void put_body(W& w, const AuthWriteMsg& m) {
  w.u64(m.ts);
  w.bytes(m.val);
  w.bytes(m.mac);
}
bool get_body(ByteReader& r, AuthWriteMsg& m) {
  return r.u64(m.ts) && r.bytes(m.val) && r.bytes(m.mac);
}

template <class W>
void put_body(W& w, const AuthWriteAckMsg& m) { w.u64(m.ts); }
bool get_body(ByteReader& r, AuthWriteAckMsg& m) { return r.u64(m.ts); }

template <class W>
void put_body(W& w, const AuthReadMsg& m) { w.u64(m.seq); }
bool get_body(ByteReader& r, AuthReadMsg& m) { return r.u64(m.seq); }

template <class W>
void put_body(W& w, const AuthReadAckMsg& m) {
  w.u64(m.seq);
  w.u64(m.ts);
  w.bytes(m.val);
  w.bytes(m.mac);
}
bool get_body(ByteReader& r, AuthReadAckMsg& m) {
  return r.u64(m.seq) && r.u64(m.ts) && r.bytes(m.val) && r.bytes(m.mac);
}

template <class W>
void put_body(W& w, const ScReadMsg& m) { w.u64(m.seq); }
bool get_body(ByteReader& r, ScReadMsg& m) { return r.u64(m.seq); }

template <class W>
void put_body(W& w, const ScPushMsg& m) {
  w.u64(m.seq);
  w.u32(m.epoch);
  put(w, m.pw);
  put(w, m.w);
}
bool get_body(ByteReader& r, ScPushMsg& m) {
  return r.u64(m.seq) && r.u32(m.epoch) && get(r, m.pw) && get(r, m.w);
}

template <class W>
void put_body(W& w, const ScGossipMsg& m) {
  w.u64(m.ts);
  put(w, m.pw);
  put(w, m.w);
}
bool get_body(ByteReader& r, ScGossipMsg& m) {
  return r.u64(m.ts) && get(r, m.pw) && get(r, m.w);
}

template <class W>
void put_body(W& w, const ShardMsg& m) {
  w.u32(m.reg);
  w.bytes(m.payload);
}
bool get_body(ByteReader& r, ShardMsg& m) {
  return r.u32(m.reg) && r.bytes(m.payload);
}

// ---------------------------------------------------------------------------
// Variant dispatch
// ---------------------------------------------------------------------------

template <std::size_t I = 0>
std::optional<Message> decode_alternative(std::uint8_t tag, ByteReader& r) {
  if constexpr (I >= std::variant_size_v<Message>) {
    (void)tag;
    (void)r;
    return std::nullopt;
  } else {
    if (tag == I) {
      std::variant_alternative_t<I, Message> body;
      if (!get_body(r, body) || !r.exhausted()) return std::nullopt;
      return Message(std::in_place_index<I>, std::move(body));
    }
    return decode_alternative<I + 1>(tag, r);
  }
}

}  // namespace

std::string encode(const Message& m) {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(m.index()));
  std::visit([&](const auto& body) { put_body(w, body); }, m);
  return std::move(w).take();
}

std::optional<Message> decode(const std::string& bytes) {
  ByteReader r(bytes);
  std::uint8_t tag = 0;
  if (!r.u8(tag)) return std::nullopt;
  return decode_alternative(tag, r);
}

std::size_t encoded_size(const Message& m) {
  SizeWriter w;
  w.u8(static_cast<std::uint8_t>(m.index()));
  std::visit([&](const auto& body) { put_body(w, body); }, m);
  return w.size();
}

const char* type_name(const Message& m) {
  static constexpr const char* kNames[] = {
      "PW",        "PW_ACK",      "W",         "WRITE_ACK", "READ",
      "READ_ACK",  "HIST_ACK",    "ABD_STORE", "ABD_STORE_ACK",
      "ABD_QUERY", "ABD_QUERY_ACK",
      "BL_WRITE",  "BL_WRITE_ACK", "FW_WRITE", "FW_WRITE_ACK",
      "POLL",      "POLL_ACK",
      "AUTH_WRITE", "AUTH_WRITE_ACK", "AUTH_READ", "AUTH_READ_ACK",
      "SC_READ",   "SC_PUSH",     "SC_GOSSIP",  "SHARD",     "HIST_READ"};
  static_assert(std::variant_size_v<Message> ==
                sizeof(kNames) / sizeof(kNames[0]));
  return kNames[m.index()];
}

}  // namespace rr::wire
