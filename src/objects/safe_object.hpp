// Base object automaton of the SWMR *safe* storage (paper Figure 3).
//
// The object is an "active disk": it keeps three fields
//   pw      -- the timestamp-value pair from the writer's pre-write round,
//   w       -- the tuple <tsval, tsrarray> from the writer's write round,
//   tsr[j]  -- the latest timestamp stored by reader j (control data),
// and replies only when polled, never spontaneously (data-centric model,
// Section 2).
#pragma once

#include "common/types.hpp"
#include "net/process.hpp"

namespace rr::objects {

class SafeObject : public net::Process {
 public:
  /// Full object state; exposed so the lower-bound orchestrator can
  /// snapshot/forge states (sigma_0, sigma_1, sigma_2 in the proof) and so
  /// tests can inspect fields directly.
  struct State {
    Ts ts{0};
    TsVal pw{TsVal::bottom()};
    WTuple w{};
    TsrRow tsr{};

    friend bool operator==(const State&, const State&) = default;
  };

  SafeObject(const Topology& topo, int object_index);

  void on_message(net::Context& ctx, ProcessId from,
                  const wire::Message& msg) override;

  [[nodiscard]] const State& state() const { return st_; }
  void set_state(State s) { st_ = std::move(s); }
  [[nodiscard]] int object_index() const { return index_; }

 private:
  void handle_pw(net::Context& ctx, ProcessId from, const wire::PwMsg& m);
  void handle_w(net::Context& ctx, ProcessId from, const wire::WMsg& m);
  void handle_read(net::Context& ctx, ProcessId from, const wire::ReadMsg& m);

  Topology topo_;
  int index_;
  State st_;
};

}  // namespace rr::objects
