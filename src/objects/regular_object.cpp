#include "objects/regular_object.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace rr::objects {

RegularObject::RegularObject(const Topology& topo, int object_index,
                             std::size_t history_limit, bool history_gc)
    : topo_(topo),
      index_(object_index),
      history_limit_(history_limit),
      history_gc_(history_gc) {
  RR_ASSERT_MSG(history_limit == 0 || history_limit >= 2,
                "a write needs two live slots (ts and ts-1)");
  // Figure 5 line 1: history[0] = <pw0, <pw0, inittsrarray>> -- the initial
  // tuple w0 every correct object can vouch for.
  const auto s = static_cast<std::size_t>(topo.num_objects());
  st_.history[0] =
      wire::HistEntry{TsVal::bottom(), initial_wtuple(s)};
  st_.tsr.assign(static_cast<std::size_t>(topo.num_readers()), 0);
  acked_.assign(static_cast<std::size_t>(topo.num_readers()), 0);
}

void RegularObject::on_message(net::Context& ctx, ProcessId from,
                               const wire::Message& msg) {
  if (const auto* pw = std::get_if<wire::PwMsg>(&msg)) {
    handle_pw(ctx, from, *pw);
  } else if (const auto* w = std::get_if<wire::WMsg>(&msg)) {
    handle_w(ctx, from, *w);
  } else if (const auto* rd = std::get_if<wire::HistReadMsg>(&msg)) {
    handle_read(ctx, from, *rd);
  }
}

void RegularObject::handle_pw(net::Context& ctx, ProcessId from,
                              const wire::PwMsg& m) {
  if (from != topo_.writer()) return;
  // Figure 5 lines 4-9 (following the Section 5 prose, which indexes the new
  // slots by the *incoming* timestamp ts'; the pseudocode's "history[ts]" is
  // a typo). The PW message of write ts' both opens slot ts' with the fresh
  // pre-write and completes slot ts'-1 with the previous write's full tuple
  // (m.w), so objects that missed the W round of ts'-1 still learn it.
  if (m.ts > st_.ts) {
    st_.history.put_pw(m.ts, m.pw);
    if (m.ts >= 1) {
      st_.history.put_w(m.ts - 1, m.w.tsval, m.w);
    }
    st_.ts = m.ts;
    prune_history();
    ctx.send(from, wire::PwAckMsg{st_.ts, st_.tsr});
  }
}

void RegularObject::handle_w(net::Context& ctx, ProcessId from,
                             const wire::WMsg& m) {
  if (from != topo_.writer()) return;
  // Figure 5 lines 10-14.
  if (m.ts >= st_.ts) {
    st_.ts = m.ts;
    st_.history.put_w(m.ts, m.pw, m.w);
    prune_history();
    ctx.send(from, wire::WAckMsg{st_.ts});
  }
}

void RegularObject::prune_history() {
  // Watermark GC: everything strictly below every reader's acked floor has
  // been merged into every reader's mirror, so shipping can never need it
  // again; clamp to ts-1 so the two slots a write mutates stay live. With
  // no readers the min over an empty set is the clamp itself.
  if (history_gc_ && !st_.history.empty()) {
    Ts keep = st_.ts >= 1 ? st_.ts - 1 : 0;
    for (const Ts a : acked_) keep = std::min(keep, a);
    st_.history.erase(st_.history.begin(), st_.history.lower_bound(keep));
  }
  // Hard cap: a reader that never acks (crashed, Byzantine, or simply not
  // reading) cannot wedge memory. This MAY evict past a live watermark;
  // handle_read answers the affected reader with a flagged resync.
  if (history_limit_ != 0 && st_.history.size() > history_limit_) {
    st_.history.erase(st_.history.begin(),
                      st_.history.end() -
                          static_cast<std::ptrdiff_t>(history_limit_));
  }
}

void RegularObject::handle_read(net::Context& ctx, ProcessId from,
                                const wire::HistReadMsg& m) {
  if (topo_.role_of(from) != Role::Reader) return;
  const auto j = static_cast<std::size_t>(topo_.reader_index(from));
  if (j >= st_.tsr.size()) return;
  // Figure 5 lines 15-19, with ack-driven delta shipping: the reader's
  // floor is max(have, cache_ts) -- everything below it is already in its
  // mirror (have) or irrelevant to it (cache_ts) -- and doubles as its
  // acked watermark for prefix GC. The floor is inclusive: the top slot can
  // still mutate (its w fills in), so it always re-ships.
  if (m.tsr > st_.tsr[j]) {
    st_.tsr[j] = m.tsr;
    const Ts floor = std::max(m.have, m.cache_ts);
    acked_[j] = std::max(acked_[j], floor);
    prune_history();
    wire::HistReadAckMsg ack;
    ack.round = m.round;
    ack.tsr = st_.tsr[j];
    const Ts oldest =
        st_.history.empty() ? 0 : st_.history.begin()->first;
    if (oldest > floor) {
      // The hard cap evicted slots the reader still needed: explicit
      // flagged resync from our oldest retained slot, never a silently
      // shortened delta.
      ack.since = oldest;
      ack.resync = 1;
      ++resyncs_;
    } else {
      ack.since = floor;
    }
    // One binary search + one bulk copy of the suffix range (the history is
    // a sorted flat ring).
    ack.history = wire::History(st_.history.lower_bound(ack.since),
                                st_.history.end());
    // The shipped suffix covers [since, ts] gap-free by construction; a
    // suffix that starts above the requested floor must be flagged.
    RR_ASSERT(ack.resync == 1 || ack.since <= floor);
    ctx.send(from, std::move(ack));
  }
}

}  // namespace rr::objects
