#include "objects/regular_object.hpp"

#include "common/assert.hpp"

namespace rr::objects {

RegularObject::RegularObject(const Topology& topo, int object_index,
                             std::size_t history_limit)
    : topo_(topo), index_(object_index), history_limit_(history_limit) {
  RR_ASSERT_MSG(history_limit == 0 || history_limit >= 2,
                "a write needs two live slots (ts and ts-1)");
  // Figure 5 line 1: history[0] = <pw0, <pw0, inittsrarray>> -- the initial
  // tuple w0 every correct object can vouch for.
  const auto s = static_cast<std::size_t>(topo.num_objects());
  st_.history[0] =
      wire::HistEntry{TsVal::bottom(), initial_wtuple(s)};
  st_.tsr.assign(static_cast<std::size_t>(topo.num_readers()), 0);
}

void RegularObject::on_message(net::Context& ctx, ProcessId from,
                               const wire::Message& msg) {
  if (const auto* pw = std::get_if<wire::PwMsg>(&msg)) {
    handle_pw(ctx, from, *pw);
  } else if (const auto* w = std::get_if<wire::WMsg>(&msg)) {
    handle_w(ctx, from, *w);
  } else if (const auto* rd = std::get_if<wire::ReadMsg>(&msg)) {
    handle_read(ctx, from, *rd);
  }
}

void RegularObject::handle_pw(net::Context& ctx, ProcessId from,
                              const wire::PwMsg& m) {
  if (from != topo_.writer()) return;
  // Figure 5 lines 4-9 (following the Section 5 prose, which indexes the new
  // slots by the *incoming* timestamp ts'; the pseudocode's "history[ts]" is
  // a typo). The PW message of write ts' both opens slot ts' with the fresh
  // pre-write and completes slot ts'-1 with the previous write's full tuple
  // (m.w), so objects that missed the W round of ts'-1 still learn it.
  if (m.ts > st_.ts) {
    st_.history[m.ts] = wire::HistEntry{m.pw, std::nullopt};
    if (m.ts >= 1) {
      st_.history[m.ts - 1] = wire::HistEntry{m.w.tsval, m.w};
    }
    st_.ts = m.ts;
    prune_history();
    ctx.send(from, wire::PwAckMsg{st_.ts, st_.tsr});
  }
}

void RegularObject::handle_w(net::Context& ctx, ProcessId from,
                             const wire::WMsg& m) {
  if (from != topo_.writer()) return;
  // Figure 5 lines 10-14.
  if (m.ts >= st_.ts) {
    st_.ts = m.ts;
    st_.history[m.ts] = wire::HistEntry{m.pw, m.w};
    prune_history();
    ctx.send(from, wire::WAckMsg{st_.ts});
  }
}

void RegularObject::prune_history() {
  if (history_limit_ == 0) return;
  if (st_.history.size() > history_limit_) {
    // One range erase (single shift of the kept suffix) instead of
    // erasing the front slot-by-slot.
    st_.history.erase(st_.history.begin(),
                      st_.history.end() -
                          static_cast<std::ptrdiff_t>(history_limit_));
  }
}

void RegularObject::handle_read(net::Context& ctx, ProcessId from,
                                const wire::ReadMsg& m) {
  if (topo_.role_of(from) != Role::Reader) return;
  const auto j = static_cast<std::size_t>(topo_.reader_index(from));
  if (j >= st_.tsr.size()) return;
  // Figure 5 lines 15-19, with the Section 5.1 suffix optimization: ship
  // only history slots >= the reader's cached timestamp (cache_ts = 0 means
  // the full history).
  if (m.tsr > st_.tsr[j]) {
    st_.tsr[j] = m.tsr;
    wire::HistReadAckMsg ack;
    ack.round = m.round;
    ack.tsr = st_.tsr[j];
    // One binary search + one bulk copy of the suffix range (the history is
    // a sorted flat vector).
    ack.history = wire::History(st_.history.lower_bound(m.cache_ts),
                                st_.history.end());
    ctx.send(from, std::move(ack));
  }
}

}  // namespace rr::objects
