#include "objects/safe_object.hpp"

#include "common/assert.hpp"

namespace rr::objects {

SafeObject::SafeObject(const Topology& topo, int object_index)
    : topo_(topo), index_(object_index) {
  st_.w = initial_wtuple(static_cast<std::size_t>(topo.num_objects()));
  st_.tsr.assign(static_cast<std::size_t>(topo.num_readers()), 0);
}

void SafeObject::on_message(net::Context& ctx, ProcessId from,
                            const wire::Message& msg) {
  if (const auto* pw = std::get_if<wire::PwMsg>(&msg)) {
    handle_pw(ctx, from, *pw);
  } else if (const auto* w = std::get_if<wire::WMsg>(&msg)) {
    handle_w(ctx, from, *w);
  } else if (const auto* rd = std::get_if<wire::ReadMsg>(&msg)) {
    handle_read(ctx, from, *rd);
  }
  // Anything else is not part of this object's protocol; a correct object
  // ignores it (robustness against misdirected or malicious traffic).
}

void SafeObject::handle_pw(net::Context& ctx, ProcessId from,
                           const wire::PwMsg& m) {
  if (from != topo_.writer()) return;  // only the writer may write
  // Figure 3 lines 3-7: adopt strictly newer pre-writes; the ack echoes the
  // object's reader-timestamp row, which the writer folds into the tuple it
  // will store in the W round.
  if (m.ts > st_.ts) {
    st_.ts = m.ts;
    st_.pw = m.pw;
    st_.w = m.w;
    ctx.send(from, wire::PwAckMsg{st_.ts, st_.tsr});
  }
}

void SafeObject::handle_w(net::Context& ctx, ProcessId from,
                          const wire::WMsg& m) {
  if (from != topo_.writer()) return;
  // Figure 3 lines 8-12. Note ">=": the W message of write k must be adopted
  // by objects whose state already carries k from the PW round.
  if (m.ts >= st_.ts) {
    st_.ts = m.ts;
    st_.pw = m.pw;
    st_.w = m.w;
    ctx.send(from, wire::WAckMsg{st_.ts});
  }
}

void SafeObject::handle_read(net::Context& ctx, ProcessId from,
                             const wire::ReadMsg& m) {
  if (topo_.role_of(from) != Role::Reader) return;
  const auto j = static_cast<std::size_t>(topo_.reader_index(from));
  if (j >= st_.tsr.size()) return;
  // Figure 3 lines 13-17: store the reader's fresh timestamp *before*
  // replying. This is the mechanism that lets the reader cross-examine
  // object responses: a tuple claiming that this object reported a higher
  // timestamp than the reader ever issued convicts somebody of lying.
  if (m.tsr > st_.tsr[j]) {
    st_.tsr[j] = m.tsr;
    ctx.send(from, wire::ReadAckMsg{m.round, st_.tsr[j], st_.pw, st_.w});
  }
}

}  // namespace rr::objects
