// Base object automaton of the SWMR *regular* storage (paper Figure 5).
//
// Unlike the safe object, the regular object keeps the history of values
// received from the writer, keyed by writer timestamp. Readers receive
// history *deltas*: each HIST_READ carries the reader's acked watermark
// (Section 5.1's cache_ts plus the top slot it already merged), the object
// ships only the suffix past it, and the acked prefix becomes eligible for
// garbage collection.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "net/process.hpp"
#include "wire/messages.hpp"

namespace rr::objects {

class RegularObject : public net::Process {
 public:
  struct State {
    Ts ts{0};
    wire::History history{};
    TsrRow tsr{};

    friend bool operator==(const State&, const State&) = default;
  };

  /// History retention policy.
  ///
  /// `history_gc` (default on) is the watermark rule: a prefix is
  /// collectible once min(acked watermark over all readers, ts-1) passes
  /// it. A reader's watermark is the floor of its last HIST_READ
  /// (max(have, cache_ts)): everything below it has provably been merged
  /// into that reader's mirror, so evicting it can never punch a hole into
  /// a future delta. Regularity is preserved for the same reason the
  /// Section 5.1 suffix optimization is sound: a missing slot only adds
  /// invalid() denials against *old* candidates, steering reads towards
  /// newer written values.
  ///
  /// `history_limit` is the hard cap on retained slots (0 = unlimited): a
  /// crashed or Byzantine reader that never acks cannot wedge memory. The
  /// cap MAY evict past a live reader's watermark; when that reader asks
  /// for the evicted suffix the object answers with an explicit flagged
  /// resync (HistReadAckMsg::resync), never a silently-shortened delta.
  /// Must be 0 or >= 2 (a write transiently occupies two slots: ts, ts-1).
  RegularObject(const Topology& topo, int object_index,
                std::size_t history_limit = 0, bool history_gc = true);

  void on_message(net::Context& ctx, ProcessId from,
                  const wire::Message& msg) override;

  [[nodiscard]] const State& state() const { return st_; }
  void set_state(State s) { st_ = std::move(s); }
  [[nodiscard]] int object_index() const { return index_; }

  /// Number of history slots currently held (storage-exhaustion metric for
  /// the Section 5.1 discussion).
  [[nodiscard]] std::size_t history_size() const { return st_.history.size(); }

  /// Per-reader acked watermarks (floor of each reader's last HIST_READ);
  /// monotone, exposed for tests and diagnostics.
  [[nodiscard]] const std::vector<Ts>& acked() const { return acked_; }
  /// Count of flagged resyncs served (hard cap evicted past a watermark).
  [[nodiscard]] std::uint64_t resyncs_served() const { return resyncs_; }

 private:
  void handle_pw(net::Context& ctx, ProcessId from, const wire::PwMsg& m);
  void handle_w(net::Context& ctx, ProcessId from, const wire::WMsg& m);
  void handle_read(net::Context& ctx, ProcessId from,
                   const wire::HistReadMsg& m);
  void prune_history();

  Topology topo_;
  int index_;
  std::size_t history_limit_;
  bool history_gc_;
  State st_;
  std::vector<Ts> acked_;  ///< per-reader watermark, indexed like st_.tsr
  std::uint64_t resyncs_{0};
};

}  // namespace rr::objects
