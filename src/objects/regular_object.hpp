// Base object automaton of the SWMR *regular* storage (paper Figure 5).
//
// Unlike the safe object, the regular object keeps the entire history of
// values received from the writer, keyed by writer timestamp. Readers
// receive the history (or, with the Section 5.1 optimization, the suffix
// from their cached timestamp onwards).
#pragma once

#include "common/types.hpp"
#include "net/process.hpp"
#include "wire/messages.hpp"

namespace rr::objects {

class RegularObject : public net::Process {
 public:
  struct State {
    Ts ts{0};
    wire::History history{};
    TsrRow tsr{};

    friend bool operator==(const State&, const State&) = default;
  };

  /// `history_limit` bounds the number of retained history slots (0 =
  /// unlimited, the paper's presentation). The paper notes that keeping the
  /// entire history "might raise issues of storage exhaustion and needs
  /// careful garbage collection"; this implements the simple sound policy:
  /// prune oldest-first, always keeping the `history_limit` newest slots.
  /// Regularity is preserved because (a) the newest slots -- including the
  /// last completed write every correct quorum holds -- are never pruned,
  /// and (b) a pruned slot only adds invalid() denials against *old*
  /// candidates, steering reads towards newer written values, which
  /// condition (2) always permits. Must be 0 or >= 2 (a write transiently
  /// occupies two slots: ts and ts-1).
  RegularObject(const Topology& topo, int object_index,
                std::size_t history_limit = 0);

  void on_message(net::Context& ctx, ProcessId from,
                  const wire::Message& msg) override;

  [[nodiscard]] const State& state() const { return st_; }
  void set_state(State s) { st_ = std::move(s); }
  [[nodiscard]] int object_index() const { return index_; }

  /// Number of history slots currently held (storage-exhaustion metric for
  /// the Section 5.1 discussion).
  [[nodiscard]] std::size_t history_size() const { return st_.history.size(); }

 private:
  void handle_pw(net::Context& ctx, ProcessId from, const wire::PwMsg& m);
  void handle_w(net::Context& ctx, ProcessId from, const wire::WMsg& m);
  void handle_read(net::Context& ctx, ProcessId from, const wire::ReadMsg& m);
  void prune_history();

  Topology topo_;
  int index_;
  std::size_t history_limit_;
  State st_;
};

}  // namespace rr::objects
