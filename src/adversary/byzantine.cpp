#include "adversary/byzantine.hpp"

#include <unordered_map>
#include <utility>

#include "baselines/abd.hpp"
#include "baselines/authenticated.hpp"
#include "baselines/polling.hpp"
#include "common/assert.hpp"

namespace rr::adversary {
namespace {

/// Reader timestamp far above anything a real reader issues in our runs;
/// used by the accuser strategy to trigger conflicts.
constexpr ReaderTs kAccusation = 1'000'000'000ULL;

/// Deterministic rendezvous timestamp for colluders (no communication
/// needed: all colluders forge the same candidate).
constexpr Ts kColludeTs = 999'983ULL;

bool is_write_message(const wire::Message& m) {
  return std::holds_alternative<wire::PwMsg>(m) ||
         std::holds_alternative<wire::WMsg>(m) ||
         std::holds_alternative<wire::BlWriteMsg>(m) ||
         std::holds_alternative<wire::FwWriteMsg>(m) ||
         std::holds_alternative<wire::AuthWriteMsg>(m) ||
         std::holds_alternative<wire::AbdStoreMsg>(m);
}

bool is_read_request(const wire::Message& m) {
  return std::holds_alternative<wire::ReadMsg>(m) ||
         std::holds_alternative<wire::HistReadMsg>(m) ||
         std::holds_alternative<wire::PollMsg>(m) ||
         std::holds_alternative<wire::AuthReadMsg>(m) ||
         std::holds_alternative<wire::AbdQueryMsg>(m);
}

class ByzantineBase : public net::Process {
 public:
  ByzantineBase(Flavor flavor, const Topology& topo, const Resilience& res,
                int index)
      : flavor_(flavor), topo_(topo), res_(res), index_(index) {
    switch (flavor) {
      case Flavor::Safe:
        inner_ = std::make_unique<objects::SafeObject>(topo, index);
        break;
      case Flavor::Regular:
        inner_ = std::make_unique<objects::RegularObject>(topo, index);
        break;
      case Flavor::Poll:
        inner_ = std::make_unique<baselines::PollObject>(topo, index);
        break;
      case Flavor::Auth:
        inner_ = std::make_unique<baselines::AuthObject>(topo, index);
        break;
      case Flavor::Abd:
        inner_ = std::make_unique<baselines::AbdObject>(topo, index);
        break;
    }
  }

 protected:
  /// Runs the embedded honest automaton, returning (not sending) its
  /// replies; also tracks the highest writer timestamp observed so forged
  /// candidates stay "fresh".
  std::vector<Outgoing> run_honest(net::Context& ctx, ProcessId from,
                                   const wire::Message& msg) {
    observe(msg);
    CapturingContext cap(ctx);
    inner_->on_message(cap, from, msg);
    return cap.take();
  }

  void forward(net::Context& ctx, std::vector<Outgoing> outs) {
    for (auto& out : outs) ctx.send(out.to, std::move(out.msg));
  }

  void observe(const wire::Message& msg) {
    if (const auto* pw = std::get_if<wire::PwMsg>(&msg)) {
      seen_ts_ = std::max(seen_ts_, pw->ts);
    } else if (const auto* w = std::get_if<wire::WMsg>(&msg)) {
      seen_ts_ = std::max(seen_ts_, w->ts);
    } else if (const auto* bl = std::get_if<wire::BlWriteMsg>(&msg)) {
      seen_ts_ = std::max(seen_ts_, bl->ts);
    } else if (const auto* fw = std::get_if<wire::FwWriteMsg>(&msg)) {
      seen_ts_ = std::max(seen_ts_, fw->ts);
    } else if (const auto* au = std::get_if<wire::AuthWriteMsg>(&msg)) {
      seen_ts_ = std::max(seen_ts_, au->ts);
    } else if (const auto* ab = std::get_if<wire::AbdStoreMsg>(&msg)) {
      seen_ts_ = std::max(seen_ts_, ab->tsval.ts);
    }
  }

  /// Fabricates a tuple that looks like a legitimately written one: the
  /// tsrarray has exactly S-t non-nil rows (the shape an honest writer
  /// produces). With `accuse`, every row claims reader `reader_j` issued an
  /// absurdly high timestamp, arming the conflict predicate against every
  /// object the row mentions.
  [[nodiscard]] WTuple forge_tuple(Ts ts, const Value& val, bool accuse,
                                   int reader_j) const {
    WTuple t;
    t.tsval = TsVal{ts, val};
    t.tsrarray = init_tsrarray(static_cast<std::size_t>(res_.num_objects));
    for (int i = 0; i < res_.quorum() && i < res_.num_objects; ++i) {
      TsrRow row(static_cast<std::size_t>(res_.num_readers), 0);
      if (accuse && reader_j >= 0 &&
          reader_j < static_cast<int>(row.size())) {
        row[static_cast<std::size_t>(reader_j)] = kAccusation;
      }
      t.tsrarray[static_cast<std::size_t>(i)] = std::move(row);
    }
    return t;
  }

  /// Builds the protocol-appropriate forged reply to a read-type request.
  /// Returns empty when the request is not a read for this flavor.
  [[nodiscard]] std::vector<Outgoing> forged_read_reply(
      ProcessId from, const wire::Message& msg, Ts fake_ts, const Value& val,
      bool accuse) {
    std::vector<Outgoing> outs;
    const int reader_j = topo_.role_of(from) == Role::Reader
                             ? topo_.reader_index(from)
                             : -1;
    if (const auto* rd = std::get_if<wire::ReadMsg>(&msg)) {
      if (flavor_ == Flavor::Safe) {
        const WTuple fake = forge_tuple(fake_ts, val, accuse, reader_j);
        outs.push_back(Outgoing{
            from, wire::ReadAckMsg{rd->round, rd->tsr, fake.tsval, fake}});
      } else if (flavor_ == Flavor::Regular) {
        const WTuple fake = forge_tuple(fake_ts, val, accuse, reader_j);
        wire::HistReadAckMsg ack;
        ack.round = rd->round;
        ack.tsr = rd->tsr;
        ack.history[0] = wire::HistEntry{
            TsVal::bottom(),
            initial_wtuple(static_cast<std::size_t>(res_.num_objects))};
        ack.history[fake_ts] = wire::HistEntry{fake.tsval, fake};
        outs.push_back(Outgoing{from, std::move(ack)});
      }
    } else if (const auto* hrd = std::get_if<wire::HistReadMsg>(&msg)) {
      if (flavor_ == Flavor::Regular) {
        // Ignore the requested floor: ship the forged slot (plus the initial
        // one) regardless of what the reader claims to have. An honest-shaped
        // delta could not be more damaging than this superset.
        const WTuple fake = forge_tuple(fake_ts, val, accuse, reader_j);
        wire::HistReadAckMsg ack;
        ack.round = hrd->round;
        ack.tsr = hrd->tsr;
        ack.history[0] = wire::HistEntry{
            TsVal::bottom(),
            initial_wtuple(static_cast<std::size_t>(res_.num_objects))};
        ack.history[fake_ts] = wire::HistEntry{fake.tsval, fake};
        outs.push_back(Outgoing{from, std::move(ack)});
      }
    } else if (const auto* poll = std::get_if<wire::PollMsg>(&msg)) {
      if (flavor_ == Flavor::Poll) {
        const TsVal fake{fake_ts, val};
        outs.push_back(
            Outgoing{from, wire::PollAckMsg{poll->seq, poll->round, fake,
                                            fake}});
      }
    } else if (const auto* au = std::get_if<wire::AuthReadMsg>(&msg)) {
      if (flavor_ == Flavor::Auth) {
        // Byzantine objects do not hold the writer's key: the best they can
        // do is attach garbage, which readers reject.
        outs.push_back(Outgoing{
            from, wire::AuthReadAckMsg{au->seq, fake_ts, val,
                                       std::string(32, '\xee')}});
      }
    } else if (const auto* ab = std::get_if<wire::AbdQueryMsg>(&msg)) {
      if (flavor_ == Flavor::Abd) {
        outs.push_back(Outgoing{
            from, wire::AbdQueryAckMsg{ab->seq, TsVal{fake_ts, val}}});
      }
    }
    return outs;
  }

  Flavor flavor_;
  Topology topo_;
  Resilience res_;
  int index_;
  std::unique_ptr<net::Process> inner_;
  Ts seen_ts_{0};
};

class Silent final : public ByzantineBase {
 public:
  using ByzantineBase::ByzantineBase;
  void on_message(net::Context&, ProcessId, const wire::Message&) override {}
};

class Amnesiac final : public ByzantineBase {
 public:
  using ByzantineBase::ByzantineBase;

  void on_message(net::Context& ctx, ProcessId from,
                  const wire::Message& msg) override {
    // Acks writes so the writer's quorums complete, but never applies them:
    // reads are served by the embedded automaton, which is still in its
    // initial state.
    if (const auto* pw = std::get_if<wire::PwMsg>(&msg)) {
      ctx.send(from, wire::PwAckMsg{
                         pw->ts, TsrRow(static_cast<std::size_t>(
                                            res_.num_readers),
                                        0)});
    } else if (const auto* w = std::get_if<wire::WMsg>(&msg)) {
      ctx.send(from, wire::WAckMsg{w->ts});
    } else if (const auto* bl = std::get_if<wire::BlWriteMsg>(&msg)) {
      ctx.send(from, wire::BlWriteAckMsg{bl->phase, bl->ts});
    } else if (const auto* fw = std::get_if<wire::FwWriteMsg>(&msg)) {
      ctx.send(from, wire::FwWriteAckMsg{fw->ts});
    } else if (const auto* au = std::get_if<wire::AuthWriteMsg>(&msg)) {
      ctx.send(from, wire::AuthWriteAckMsg{au->ts});
    } else if (const auto* ab = std::get_if<wire::AbdStoreMsg>(&msg)) {
      ctx.send(from, wire::AbdStoreAckMsg{ab->seq});
    } else {
      forward(ctx, run_honest(ctx, from, msg));
    }
  }
};

class Forger final : public ByzantineBase {
 public:
  Forger(Flavor flavor, const Topology& topo, const Resilience& res,
         int index, bool accuse)
      : ByzantineBase(flavor, topo, res, index), accuse_(accuse) {}

  void on_message(net::Context& ctx, ProcessId from,
                  const wire::Message& msg) override {
    auto honest = run_honest(ctx, from, msg);
    if (is_write_message(msg)) {
      forward(ctx, std::move(honest));
      return;
    }
    auto forged = forged_read_reply(from, msg, seen_ts_ + 7,
                                    "FORGED", accuse_);
    if (forged.empty()) {
      forward(ctx, std::move(honest));  // not a read: behave honestly
    } else {
      forward(ctx, std::move(forged));
    }
  }

 private:
  bool accuse_;
};

class Equivocator final : public ByzantineBase {
 public:
  using ByzantineBase::ByzantineBase;

  void on_message(net::Context& ctx, ProcessId from,
                  const wire::Message& msg) override {
    auto honest = run_honest(ctx, from, msg);
    if (!is_write_message(msg)) {
      const int j = topo_.role_of(from) == Role::Reader
                        ? topo_.reader_index(from)
                        : 0;
      // A distinct forged candidate per reader, *on top of* the honest
      // reply: double-speak that a per-object set representation must
      // deduplicate.
      auto forged = forged_read_reply(
          from, msg, seen_ts_ + 3 + static_cast<Ts>(j),
          "EQUIVOCATE-" + std::to_string(j), /*accuse=*/false);
      forward(ctx, std::move(forged));
    }
    forward(ctx, std::move(honest));
  }
};

class Stagger final : public ByzantineBase {
 public:
  using ByzantineBase::ByzantineBase;

  void on_message(net::Context& ctx, ProcessId from,
                  const wire::Message& msg) override {
    auto honest = run_honest(ctx, from, msg);
    if (is_write_message(msg)) {
      forward(ctx, std::move(honest));
      return;
    }
    auto forged = forged_read_reply(from, msg,
                                    seen_ts_ + 100 + (counter_++),
                                    "STAGGER", /*accuse=*/false);
    if (forged.empty()) {
      forward(ctx, std::move(honest));
    } else {
      forward(ctx, std::move(forged));
    }
  }

 private:
  Ts counter_{0};
};

class Collude final : public ByzantineBase {
 public:
  using ByzantineBase::ByzantineBase;

  void on_message(net::Context& ctx, ProcessId from,
                  const wire::Message& msg) override {
    auto honest = run_honest(ctx, from, msg);
    if (is_write_message(msg)) {
      forward(ctx, std::move(honest));
      return;
    }
    // All colluders fabricate the identical candidate (deterministic
    // rendezvous): the forged vouch count reaches exactly b, one short of
    // the safe() threshold.
    auto forged = forged_read_reply(from, msg, kColludeTs, "COLLUDE",
                                    /*accuse=*/false);
    if (forged.empty()) {
      forward(ctx, std::move(honest));
    } else {
      forward(ctx, std::move(forged));
    }
  }
};

class RandomLiar final : public ByzantineBase {
 public:
  using ByzantineBase::ByzantineBase;

  void on_message(net::Context& ctx, ProcessId from,
                  const wire::Message& msg) override {
    auto honest = run_honest(ctx, from, msg);
    if (is_write_message(msg)) {
      forward(ctx, std::move(honest));
      return;
    }
    const double coin = ctx.rng().uniform01();
    if (coin < 0.4) {
      forward(ctx, std::move(honest));
    } else if (coin < 0.7) {
      const Ts bump = ctx.rng().uniform(1, 50);
      auto forged = forged_read_reply(from, msg, seen_ts_ + bump, "RANDOM",
                                      ctx.rng().chance(0.3));
      if (forged.empty()) {
        forward(ctx, std::move(honest));
      } else {
        forward(ctx, std::move(forged));
      }
    }
    // else: stay silent for this request.
  }
};

class StaleReplayer final : public ByzantineBase {
 public:
  using ByzantineBase::ByzantineBase;

  void on_message(net::Context& ctx, ProcessId from,
                  const wire::Message& msg) override {
    auto honest = run_honest(ctx, from, msg);
    if (!is_read_request(msg)) {
      forward(ctx, std::move(honest));  // writes and bookkeeping: honest
      return;
    }
    const auto it = stash_.find(from);
    if (it == stash_.end()) {
      // First contact: capture this honest reply verbatim -- it is the
      // snapshot this peer will be served forever.
      stash_.emplace(from, honest);
      forward(ctx, std::move(honest));
      return;
    }
    // Replay the captured old reply, re-stamped onto the current request's
    // round/seq (a raw replay would be filtered as stale round traffic;
    // the *payload* -- timestamps, values, histories -- stays old).
    auto replayed = it->second;
    for (auto& out : replayed) restamp(out.msg, msg);
    forward(ctx, std::move(replayed));
  }

 private:
  static void restamp(wire::Message& reply, const wire::Message& request) {
    if (const auto* rd = std::get_if<wire::ReadMsg>(&request)) {
      if (auto* ack = std::get_if<wire::ReadAckMsg>(&reply)) {
        ack->round = rd->round;
        ack->tsr = rd->tsr;
      } else if (auto* hist = std::get_if<wire::HistReadAckMsg>(&reply)) {
        hist->round = rd->round;
        hist->tsr = rd->tsr;
      }
    } else if (const auto* hrd = std::get_if<wire::HistReadMsg>(&request)) {
      if (auto* hist = std::get_if<wire::HistReadAckMsg>(&reply)) {
        hist->round = hrd->round;
        hist->tsr = hrd->tsr;
      }
    } else if (const auto* poll = std::get_if<wire::PollMsg>(&request)) {
      if (auto* ack = std::get_if<wire::PollAckMsg>(&reply)) {
        ack->seq = poll->seq;
        ack->round = poll->round;
      }
    } else if (const auto* au = std::get_if<wire::AuthReadMsg>(&request)) {
      if (auto* ack = std::get_if<wire::AuthReadAckMsg>(&reply)) {
        ack->seq = au->seq;
      }
    } else if (const auto* ab = std::get_if<wire::AbdQueryMsg>(&request)) {
      if (auto* ack = std::get_if<wire::AbdQueryAckMsg>(&reply)) {
        ack->seq = ab->seq;
      }
    }
  }

  std::unordered_map<ProcessId, std::vector<Outgoing>> stash_;
};

}  // namespace

const char* to_string(StrategyKind k) {
  switch (k) {
    case StrategyKind::Silent: return "silent";
    case StrategyKind::Amnesiac: return "amnesiac";
    case StrategyKind::Forger: return "forger";
    case StrategyKind::Accuser: return "accuser";
    case StrategyKind::Equivocator: return "equivocator";
    case StrategyKind::Stagger: return "stagger";
    case StrategyKind::Collude: return "collude";
    case StrategyKind::Random: return "random";
    case StrategyKind::StaleReplay: return "stalereplay";
  }
  return "?";
}

StrategyKind strategy_from_name(const std::string& name) {
  for (const auto k :
       {StrategyKind::Silent, StrategyKind::Amnesiac, StrategyKind::Forger,
        StrategyKind::Accuser, StrategyKind::Equivocator,
        StrategyKind::Stagger, StrategyKind::Collude, StrategyKind::Random,
        StrategyKind::StaleReplay}) {
    if (name == to_string(k)) return k;
  }
  RR_ASSERT_MSG(false, "unknown Byzantine strategy name");
  return StrategyKind::Silent;
}

std::unique_ptr<net::Process> make_byzantine(StrategyKind kind, Flavor flavor,
                                             const Topology& topo,
                                             const Resilience& res,
                                             int object_index) {
  switch (kind) {
    case StrategyKind::Silent:
      return std::make_unique<Silent>(flavor, topo, res, object_index);
    case StrategyKind::Amnesiac:
      return std::make_unique<Amnesiac>(flavor, topo, res, object_index);
    case StrategyKind::Forger:
      return std::make_unique<Forger>(flavor, topo, res, object_index,
                                      /*accuse=*/false);
    case StrategyKind::Accuser:
      return std::make_unique<Forger>(flavor, topo, res, object_index,
                                      /*accuse=*/true);
    case StrategyKind::Equivocator:
      return std::make_unique<Equivocator>(flavor, topo, res, object_index);
    case StrategyKind::Stagger:
      return std::make_unique<Stagger>(flavor, topo, res, object_index);
    case StrategyKind::Collude:
      return std::make_unique<Collude>(flavor, topo, res, object_index);
    case StrategyKind::Random:
      return std::make_unique<RandomLiar>(flavor, topo, res, object_index);
    case StrategyKind::StaleReplay:
      return std::make_unique<StaleReplayer>(flavor, topo, res, object_index);
  }
  return nullptr;
}

}  // namespace rr::adversary
