// A Context that buffers sends instead of performing them.
//
// Byzantine strategies use this to run an embedded *honest* automaton,
// inspect/mutate/suppress its would-be replies, and only then decide what
// actually goes on the wire. The lower-bound orchestrator uses the same
// mechanism to capture reply messages for byte-level indistinguishability
// checks.
#pragma once

#include <utility>
#include <vector>

#include "net/process.hpp"

namespace rr::adversary {

struct Outgoing {
  ProcessId to{kNoProcess};
  wire::Message msg{};
};

class CapturingContext final : public net::Context {
 public:
  explicit CapturingContext(net::Context& real) : real_(real) {}

  [[nodiscard]] ProcessId self() const override { return real_.self(); }
  [[nodiscard]] Time now() const override { return real_.now(); }
  void send(ProcessId to, wire::Message msg) override {
    sent_.push_back(Outgoing{to, std::move(msg)});
  }
  [[nodiscard]] Rng& rng() override { return real_.rng(); }

  [[nodiscard]] std::vector<Outgoing> take() { return std::move(sent_); }
  [[nodiscard]] const std::vector<Outgoing>& sent() const { return sent_; }

 private:
  net::Context& real_;
  std::vector<Outgoing> sent_;
};

}  // namespace rr::adversary
