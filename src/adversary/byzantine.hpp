// Byzantine base-object strategies.
//
// Every strategy is a drop-in replacement for an honest base object (it
// speaks the same wire protocol) that lies in a particular way. The model
// allows arbitrary behaviour; these strategies cover the attack classes that
// matter for the paper's mechanisms:
//
//   silent       crash-like: never replies (tests quorum liveness).
//   amnesiac     acks writes but serves reads from the initial state
//                (staleness attack -- defeats any "trust one reply" rule).
//   forger       fabricates a candidate with a higher timestamp and a
//                plausible tsrarray (the attack the safe() predicate kills).
//   accuser      fabricates a candidate whose embedded tsrarray accuses
//                honest objects of huge reader timestamps (attacks round-1
//                liveness through the conflict predicate).
//   equivocator  sends the honest reply *plus* a per-reader distinct forged
//                one (stresses multi-report bookkeeping; objects only count
//                once in every cardinality predicate).
//   stagger      escalates: each reply carries a fresh, higher forged
//                candidate (drives the polling baseline towards its b+1
//                worst case).
//   collude      all colluders forge the *same* deterministic candidate
//                (maximizes forged vouch counts: exactly b < b+1).
//   random       coin-flips between honest behaviour, forging and silence.
//   stalereplay  answers the first read per peer honestly, captures that
//                reply (capture.hpp), and re-sends the captured snapshot --
//                re-stamped onto the current round -- to every later read
//                from that peer (a replay attack: old truth, fresh framing).
//
// Strategies embed a real honest automaton (SafeObject or RegularObject by
// flavor) and run it through a CapturingContext, so their write-side
// behaviour is indistinguishable from honest objects and the writer makes
// progress; only read replies are twisted.
#pragma once

#include <memory>
#include <string>

#include "adversary/capture.hpp"
#include "common/types.hpp"
#include "net/process.hpp"
#include "objects/regular_object.hpp"
#include "objects/safe_object.hpp"

namespace rr::adversary {

/// Which honest protocol family the impostor mimics.
enum class Flavor { Safe, Regular, Poll, Auth, Abd };

enum class StrategyKind {
  Silent,
  Amnesiac,
  Forger,
  Accuser,
  Equivocator,
  Stagger,
  Collude,
  Random,
  StaleReplay,
};

[[nodiscard]] const char* to_string(StrategyKind k);
[[nodiscard]] StrategyKind strategy_from_name(const std::string& name);

/// Creates a Byzantine object automaton implementing `kind` against the
/// protocol family `flavor`, posing as object `object_index`.
[[nodiscard]] std::unique_ptr<net::Process> make_byzantine(
    StrategyKind kind, Flavor flavor, const Topology& topo,
    const Resilience& res, int object_index);

}  // namespace rr::adversary
