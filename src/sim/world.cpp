#include "sim/world.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "wire/codec.hpp"

namespace rr::sim {

/// The Context handed to a process while it takes a step under the DES.
class WorldContext final : public net::Context {
 public:
  WorldContext(World& world, ProcessId self) : world_(world), self_(self) {}

  [[nodiscard]] ProcessId self() const override { return self_; }
  [[nodiscard]] Time now() const override { return world_.local_now(self_); }

  void send(ProcessId to, wire::Message msg) override {
    world_.do_send(self_, to, std::move(msg));
  }

  [[nodiscard]] Rng& rng() override {
    return world_.procs_[static_cast<std::size_t>(self_)].rng;
  }

 private:
  World& world_;
  ProcessId self_;
};

World::World(Options opts)
    : opts_(opts),
      rng_(opts.seed),
      delay_(std::make_unique<UniformDelay>(1'000, 10'000)) {}

World::~World() = default;

ProcessId World::add_process(std::unique_ptr<net::Process> p) {
  RR_ASSERT(p != nullptr);
  const auto pid = static_cast<ProcessId>(procs_.size());
  procs_.push_back(ProcSlot{std::move(p), rng_.fork(), false});
  return pid;
}

void World::replace_process(ProcessId pid, std::unique_ptr<net::Process> p) {
  RR_ASSERT(pid >= 0 && pid < num_processes());
  RR_ASSERT(p != nullptr);
  procs_[static_cast<std::size_t>(pid)].proc = std::move(p);
}

void World::set_delay_model(std::unique_ptr<DelayModel> m) {
  RR_ASSERT(m != nullptr);
  delay_ = std::move(m);
}

void World::set_link_faults(const net::LinkFaults& lf) {
  link_faults_ = lf;
  link_enabled_ = lf.any();
  link_rng_ = Rng(mix64(lf.seed ^ 0x11fa'0175'0000ULL));
}

void World::set_gray(ProcessId pid, double factor) {
  RR_ASSERT(pid >= 0 && pid < num_processes());
  if (gray_.empty() && factor <= 1.0) return;
  if (gray_.size() < static_cast<std::size_t>(num_processes())) {
    gray_.resize(static_cast<std::size_t>(num_processes()), 1.0);
  }
  gray_[static_cast<std::size_t>(pid)] = factor > 1.0 ? factor : 1.0;
}

void World::set_clock_skew(ProcessId pid, std::int64_t offset) {
  RR_ASSERT(pid >= 0 && pid < num_processes());
  if (skew_.empty() && offset == 0) return;
  if (skew_.size() < static_cast<std::size_t>(num_processes())) {
    skew_.resize(static_cast<std::size_t>(num_processes()), 0);
  }
  skew_[static_cast<std::size_t>(pid)] = offset;
}

net::Process& World::process(ProcessId pid) {
  RR_ASSERT(pid >= 0 && pid < num_processes());
  return *procs_[static_cast<std::size_t>(pid)].proc;
}

void World::start() {
  for (ProcessId pid = 0; pid < num_processes(); ++pid) {
    auto& slot = procs_[static_cast<std::size_t>(pid)];
    if (slot.crashed) continue;
    WorldContext ctx(*this, pid);
    slot.proc->on_start(ctx);
  }
}

// ---------------------------------------------------------------------------
// Event slab (SoA) + 4-ary index heap
// ---------------------------------------------------------------------------

World::EventIndex World::alloc_event() {
  if (!free_.empty()) {
    const EventIndex idx = free_.back();
    free_.pop_back();
    return idx;
  }
  keys_.emplace_back();
  bodies_.emplace_back();
  return static_cast<EventIndex>(keys_.size() - 1);
}

void World::heap_push(EventIndex idx) {
  heap_.push_back(idx);
  std::size_t i = heap_.size() - 1;
  while (i > 0) {
    const std::size_t parent = (i - 1) / 4;
    if (!event_before(heap_[i], heap_[parent])) break;
    std::swap(heap_[i], heap_[parent]);
    i = parent;
  }
}

World::EventIndex World::heap_pop() {
  const EventIndex top = heap_.front();
  heap_.front() = heap_.back();
  heap_.pop_back();
  const std::size_t n = heap_.size();
  std::size_t i = 0;
  while (true) {
    const std::size_t first = 4 * i + 1;
    if (first >= n) break;
    std::size_t best = first;
    const std::size_t last = std::min(first + 4, n);
    for (std::size_t c = first + 1; c < last; ++c) {
      if (event_before(heap_[c], heap_[best])) best = c;
    }
    if (!event_before(heap_[best], heap_[i])) break;
    std::swap(heap_[i], heap_[best]);
    i = best;
  }
  return top;
}

void World::post(Time at, ProcessId pid, net::PostFn fn) {
  RR_ASSERT(pid >= 0 && pid < num_processes());
  RR_ASSERT(at >= now_);
  const EventIndex idx = alloc_event();
  keys_[idx] = EventKey{at, next_seq_++, pid, /*is_delivery=*/false};
  EventBody& body = bodies_[idx];
  body.from = kNoProcess;
  body.fn = std::move(fn);
  heap_push(idx);
}

// ---------------------------------------------------------------------------
// Crashes and held channels
// ---------------------------------------------------------------------------

World::BufferIndex World::alloc_buffer() {
  if (!buffer_free_.empty()) {
    const BufferIndex idx = buffer_free_.back();
    buffer_free_.pop_back();
    return idx;
  }
  buffer_pool_.emplace_back();
  return static_cast<BufferIndex>(buffer_pool_.size() - 1);
}

void World::recycle_buffer(BufferIndex idx) {
  buffer_pool_[idx].clear();  // keeps capacity for the next hold wave
  buffer_free_.push_back(idx);
}

void World::crash(ProcessId pid) {
  RR_ASSERT(pid >= 0 && pid < num_processes());
  procs_[static_cast<std::size_t>(pid)].crashed = true;
  // Discard buffers held on channels adjacent to the crashed process: those
  // messages could only ever be dropped at delivery, so freeing them now
  // keeps long chaos runs from pinning dead history payloads.
  if (held_count_ == 0) return;
  for (auto it = held_buffers_.begin(); it != held_buffers_.end();) {
    const auto from = static_cast<ProcessId>(it->first >> 32);
    const auto to = static_cast<ProcessId>(it->first & 0xffffffffu);
    if (from != pid && to != pid) {
      ++it;
      continue;
    }
    stats_.messages_dropped += buffer_pool_[it->second].size();
    recycle_buffer(it->second);
    it = held_buffers_.erase(it);
  }
}

bool World::crashed(ProcessId pid) const {
  RR_ASSERT(pid >= 0 && pid < static_cast<ProcessId>(procs_.size()));
  return procs_[static_cast<std::size_t>(pid)].crashed;
}

void World::ensure_flag_capacity() {
  const auto n = static_cast<std::size_t>(num_processes());
  if (n <= flag_stride_) return;
  std::vector<std::uint8_t> grown(n * n, 0);
  for (std::size_t f = 0; f < flag_stride_; ++f) {
    for (std::size_t t = 0; t < flag_stride_; ++t) {
      grown[f * n + t] = held_flags_[f * flag_stride_ + t];
    }
  }
  held_flags_ = std::move(grown);
  flag_stride_ = n;
}

void World::hold(ProcessId from, ProcessId to) {
  RR_ASSERT(from >= 0 && from < num_processes());
  RR_ASSERT(to >= 0 && to < num_processes());
  ensure_flag_capacity();
  auto& flag =
      held_flags_[static_cast<std::size_t>(from) * flag_stride_ +
                  static_cast<std::size_t>(to)];
  if (flag != 0) return;
  flag = 1;
  ++held_count_;
}

void World::hold_all(ProcessId pid) {
  for (ProcessId q = 0; q < num_processes(); ++q) {
    if (q == pid) continue;  // the self-channel pid -> pid is never used
    hold(pid, q);
    hold(q, pid);
  }
}

bool World::held(ProcessId from, ProcessId to) const {
  return chan_flag(from, to);
}

void World::release(ProcessId from, ProcessId to) {
  if (!chan_flag(from, to)) return;
  held_flags_[static_cast<std::size_t>(from) * flag_stride_ +
              static_cast<std::size_t>(to)] = 0;
  --held_count_;
  const auto it = held_buffers_.find(chan_key(from, to));
  if (it == held_buffers_.end()) return;
  const BufferIndex idx = it->second;
  held_buffers_.erase(it);
  // Re-inject with fresh delays from `now`, preserving send order via the
  // monotonically increasing sequence numbers. Scheduling only touches the
  // event slab, never the buffer pool, so draining in place is safe; the
  // drained buffer goes back to the free list with its capacity intact.
  for (auto& msg : buffer_pool_[idx]) {
    const Time d = channel_delay(from, to);
    schedule_delivery(from, to, std::move(msg), now_ + d);
  }
  recycle_buffer(idx);
}

void World::release_all(ProcessId pid) {
  for (ProcessId q = 0; q < num_processes(); ++q) {
    release(pid, q);
    release(q, pid);
  }
}

// ---------------------------------------------------------------------------
// Send / deliver / step
// ---------------------------------------------------------------------------

void World::do_send(ProcessId from, ProcessId to, wire::Message msg) {
  RR_ASSERT(to >= 0 && to < num_processes());
  stats_.messages_sent++;
  stats_.messages_by_type[msg.index()]++;
  if (opts_.account_bytes) {
    const std::size_t n = wire::encoded_size(msg);
    stats_.bytes_sent += n;
    stats_.bytes_by_type[msg.index()] += n;
  }
  if (const auto* ha = std::get_if<wire::HistReadAckMsg>(&msg)) {
    stats_.hist_slots_shipped += ha->history.size();
    stats_.hist_resyncs += ha->resync;
  }
  // Link faults fire at send time, before hold buffering, so a held channel
  // still loses/duplicates traffic. Draw order is fixed (loss, then
  // duplicate, then per-copy reorder at scheduling) from the dedicated
  // link RNG, keeping the base delay stream untouched.
  int copies = 1;
  if (link_enabled_) {
    const auto& loss = link_faults_.loss;
    if (loss.active(now_) && loss.covers(from, to) &&
        link_rng_.chance(loss.p)) {
      stats_.messages_lost++;
      return;
    }
    const auto& dup = link_faults_.duplicate;
    if (dup.active(now_) && dup.covers(from, to) &&
        link_rng_.chance(dup.p)) {
      stats_.messages_duplicated++;
      copies = 2;
    }
  }
  if (held_count_ != 0 && chan_flag(from, to)) {
    // A buffer on a channel adjacent to a crashed endpoint could only ever
    // be purged (crash() discards it; delivery would drop it), so don't
    // let post-crash sends refill it and pin memory until release.
    if (procs_[static_cast<std::size_t>(to)].crashed ||
        procs_[static_cast<std::size_t>(from)].crashed) {
      stats_.messages_dropped++;
      return;
    }
    auto [it, inserted] = held_buffers_.try_emplace(chan_key(from, to), 0);
    if (inserted) it->second = alloc_buffer();
    auto& buf = buffer_pool_[it->second];
    for (int c = 1; c < copies; ++c) buf.push_back(msg);
    buf.push_back(std::move(msg));
    return;
  }
  for (int c = 1; c < copies; ++c) schedule_with_faults(from, to, msg);
  schedule_with_faults(from, to, std::move(msg));
}

Time World::channel_delay(ProcessId from, ProcessId to) {
  const Time d = delay_->sample(from, to, now_, rng_);
  if (gray_.empty()) return d;
  const auto f = static_cast<std::size_t>(from);
  const auto t = static_cast<std::size_t>(to);
  double m = 1.0;
  if (f < gray_.size()) m = gray_[f];
  if (t < gray_.size() && gray_[t] > m) m = gray_[t];
  return scale_delay(d, m);
}

void World::schedule_with_faults(ProcessId from, ProcessId to,
                                 wire::Message msg) {
  Time d = channel_delay(from, to);
  if (link_enabled_) {
    const auto& re = link_faults_.reorder;
    if (re.active(now_) && re.covers(from, to) && link_rng_.chance(re.p)) {
      stats_.messages_reordered++;
      d += link_faults_.reorder_delay;
    }
  }
  schedule_delivery(from, to, std::move(msg), now_ + d);
}

void World::schedule_delivery(ProcessId from, ProcessId to, wire::Message msg,
                              Time at) {
  const EventIndex idx = alloc_event();
  keys_[idx] = EventKey{at, next_seq_++, to, /*is_delivery=*/true};
  EventBody& body = bodies_[idx];
  body.from = from;
  body.msg = std::move(msg);
  heap_push(idx);
}

void World::deliver_one(net::Context& ctx, ProcSlot& slot, ProcessId from,
                        wire::Message& msg) {
  if (slot.crashed || crashed(from)) {
    // Crash-faulty endpoints: the message is lost. (For the paper's
    // purposes only the recipient matters, but a crashed sender's in-flight
    // messages disappearing is also legal in a partial run.)
    stats_.messages_dropped++;
    return;
  }
  stats_.messages_delivered++;
  if (opts_.reserialize) {
    auto round_tripped = wire::decode(wire::encode(msg));
    RR_ASSERT_MSG(round_tripped.has_value(), "codec must round-trip");
    slot.proc->on_message(ctx, from, *round_tripped);
  } else {
    slot.proc->on_message(ctx, from, msg);
  }
}

void World::fp_note(const EventKey& key, const EventBody& body) {
  // Everything that identifies the executed step: when, who stepped, what
  // kind of event, and for deliveries the sender and message type. The
  // slab index and seq are deliberately excluded -- they are allocation
  // details, not schedule semantics.
  const auto kind =
      key.is_delivery ? static_cast<std::uint64_t>(body.msg.index()) + 2 : 1;
  const std::uint64_t packed =
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(key.dest))
       << 32) |
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(body.from + 1))
       << 8) |
      kind;
  fp_ = mix64(fp_ ^ key.at ^ packed);
}

bool World::step() {
  if (heap_.empty()) return false;
  RR_ASSERT_MSG(executed_ < opts_.max_events,
                "event budget exhausted: likely livelock in a protocol");
  const EventIndex idx = heap_pop();
  // Copy the key and move the body out of the slab, recycling the slot
  // *before* running the handler: handlers send messages, which may claim
  // the slot (and, on slab growth, invalidate references into the slab
  // arrays). The move steals the message payload -- no deep copy, no
  // allocation.
  const EventKey key = keys_[idx];
  EventBody body = std::move(bodies_[idx]);
  bodies_[idx].fn = nullptr;
  free_.push_back(idx);
  executed_++;
  RR_ASSERT(key.at >= now_);
  now_ = key.at;
  if (opts_.trace_fingerprint) fp_note(key, body);
  auto& slot = procs_[static_cast<std::size_t>(key.dest)];
  WorldContext ctx(*this, key.dest);
  if (key.is_delivery) {
    deliver_one(ctx, slot, body.from, body.msg);
  } else if (!slot.crashed) {
    body.fn(ctx);
  }
  return true;
}

std::uint64_t World::step_batch() {
  RR_ASSERT_MSG(executed_ < opts_.max_events,
                "event budget exhausted: likely livelock in a protocol");
  const EventIndex idx = heap_pop();
  const EventKey key = keys_[idx];
  EventBody body = std::move(bodies_[idx]);
  bodies_[idx].fn = nullptr;
  free_.push_back(idx);
  executed_++;
  RR_ASSERT(key.at >= now_);
  now_ = key.at;
  if (opts_.trace_fingerprint) fp_note(key, body);
  auto& slot = procs_[static_cast<std::size_t>(key.dest)];
  WorldContext ctx(*this, key.dest);
  if (!key.is_delivery) {
    if (!slot.crashed) body.fn(ctx);
    return 1;
  }
  deliver_one(ctx, slot, body.from, body.msg);
  // Drain the run of queued deliveries with the same (time, dest), reusing
  // the context and destination slot. Order is exactly what repeated step()
  // would produce: a run is a prefix of the (at, seq) sort, batched events
  // cannot change crash or hold state (handlers only send), and any event a
  // handler creates sorts after the whole run (larger seq, at >= now).
  std::uint64_t n = 1;
  while (!heap_.empty()) {
    const EventIndex top = heap_.front();
    const EventKey& tk = keys_[top];
    if (tk.at != now_ || tk.dest != key.dest || !tk.is_delivery) break;
    RR_ASSERT_MSG(executed_ < opts_.max_events,
                  "event budget exhausted: likely livelock in a protocol");
    (void)heap_pop();
    const EventKey bk = keys_[top];  // slab may grow during delivery
    EventBody b = std::move(bodies_[top]);
    free_.push_back(top);
    executed_++;
    ++n;
    if (opts_.trace_fingerprint) fp_note(bk, b);
    deliver_one(ctx, slot, b.from, b.msg);
  }
  return n;
}

std::uint64_t World::run() {
  std::uint64_t n = 0;
  while (!heap_.empty()) n += step_batch();
  return n;
}

std::uint64_t World::run_until(Time deadline) {
  std::uint64_t n = 0;
  while (!heap_.empty() && keys_[heap_.front()].at <= deadline) {
    n += step_batch();
  }
  if (now_ < deadline) now_ = deadline;
  return n;
}

}  // namespace rr::sim
