#include "sim/world.hpp"

#include "common/assert.hpp"
#include "wire/codec.hpp"

namespace rr::sim {

/// The Context handed to a process while it takes a step under the DES.
class WorldContext final : public net::Context {
 public:
  WorldContext(World& world, ProcessId self) : world_(world), self_(self) {}

  [[nodiscard]] ProcessId self() const override { return self_; }
  [[nodiscard]] Time now() const override { return world_.now_; }

  void send(ProcessId to, wire::Message msg) override {
    world_.do_send(self_, to, std::move(msg));
  }

  [[nodiscard]] Rng& rng() override {
    return world_.procs_[static_cast<std::size_t>(self_)].rng;
  }

 private:
  World& world_;
  ProcessId self_;
};

World::World(Options opts)
    : opts_(opts),
      rng_(opts.seed),
      delay_(std::make_unique<UniformDelay>(1'000, 10'000)) {}

World::~World() = default;

ProcessId World::add_process(std::unique_ptr<net::Process> p) {
  RR_ASSERT(p != nullptr);
  const auto pid = static_cast<ProcessId>(procs_.size());
  procs_.push_back(ProcSlot{std::move(p), rng_.fork(), false});
  return pid;
}

void World::replace_process(ProcessId pid, std::unique_ptr<net::Process> p) {
  RR_ASSERT(pid >= 0 && pid < num_processes());
  RR_ASSERT(p != nullptr);
  procs_[static_cast<std::size_t>(pid)].proc = std::move(p);
}

void World::set_delay_model(std::unique_ptr<DelayModel> m) {
  RR_ASSERT(m != nullptr);
  delay_ = std::move(m);
}

net::Process& World::process(ProcessId pid) {
  RR_ASSERT(pid >= 0 && pid < num_processes());
  return *procs_[static_cast<std::size_t>(pid)].proc;
}

void World::start() {
  for (ProcessId pid = 0; pid < num_processes(); ++pid) {
    auto& slot = procs_[static_cast<std::size_t>(pid)];
    if (slot.crashed) continue;
    WorldContext ctx(*this, pid);
    slot.proc->on_start(ctx);
  }
}

void World::post(Time at, ProcessId pid,
                 std::function<void(net::Context&)> fn) {
  RR_ASSERT(pid >= 0 && pid < num_processes());
  RR_ASSERT(at >= now_);
  Event ev;
  ev.at = at;
  ev.seq = next_seq_++;
  ev.is_delivery = false;
  ev.to = pid;
  ev.fn = std::move(fn);
  queue_.push(std::move(ev));
}

void World::crash(ProcessId pid) {
  RR_ASSERT(pid >= 0 && pid < num_processes());
  procs_[static_cast<std::size_t>(pid)].crashed = true;
}

bool World::crashed(ProcessId pid) const {
  RR_ASSERT(pid >= 0 && pid < static_cast<ProcessId>(procs_.size()));
  return procs_[static_cast<std::size_t>(pid)].crashed;
}

void World::hold(ProcessId from, ProcessId to) { held_[{from, to}]; }

void World::hold_all(ProcessId pid) {
  for (ProcessId q = 0; q < num_processes(); ++q) {
    hold(pid, q);
    hold(q, pid);
  }
}

bool World::held(ProcessId from, ProcessId to) const {
  return held_.contains({from, to});
}

void World::release(ProcessId from, ProcessId to) {
  auto it = held_.find({from, to});
  if (it == held_.end()) return;
  auto buffered = std::move(it->second);
  held_.erase(it);
  // Re-inject with fresh delays from `now`, preserving send order via the
  // monotonically increasing sequence numbers.
  for (auto& msg : buffered) {
    const Time d = delay_->sample(from, to, now_, rng_);
    schedule_delivery(from, to, std::move(msg), now_ + d);
  }
}

void World::release_all(ProcessId pid) {
  // Collect keys first: release() mutates held_.
  std::vector<std::pair<ProcessId, ProcessId>> keys;
  for (const auto& [key, unused] : held_) {
    if (key.first == pid || key.second == pid) keys.push_back(key);
  }
  for (const auto& [from, to] : keys) release(from, to);
}

void World::do_send(ProcessId from, ProcessId to, wire::Message msg) {
  RR_ASSERT(to >= 0 && to < num_processes());
  stats_.messages_sent++;
  stats_.messages_by_type[msg.index()]++;
  if (opts_.account_bytes) {
    const std::size_t n = wire::encoded_size(msg);
    stats_.bytes_sent += n;
    stats_.bytes_by_type[msg.index()] += n;
  }
  if (auto it = held_.find({from, to}); it != held_.end()) {
    it->second.push_back(std::move(msg));
    return;
  }
  const Time d = delay_->sample(from, to, now_, rng_);
  schedule_delivery(from, to, std::move(msg), now_ + d);
}

void World::schedule_delivery(ProcessId from, ProcessId to, wire::Message msg,
                              Time at) {
  Event ev;
  ev.at = at;
  ev.seq = next_seq_++;
  ev.is_delivery = true;
  ev.from = from;
  ev.to = to;
  ev.msg = std::move(msg);
  queue_.push(std::move(ev));
}

void World::deliver(const Event& ev) {
  auto& slot = procs_[static_cast<std::size_t>(ev.to)];
  if (slot.crashed || crashed(ev.from)) {
    // Crash-faulty endpoints: the message is lost. (For the paper's
    // purposes only the recipient matters, but a crashed sender's in-flight
    // messages disappearing is also legal in a partial run.)
    stats_.messages_dropped++;
    return;
  }
  stats_.messages_delivered++;
  WorldContext ctx(*this, ev.to);
  if (opts_.reserialize) {
    auto round_tripped = wire::decode(wire::encode(ev.msg));
    RR_ASSERT_MSG(round_tripped.has_value(), "codec must round-trip");
    slot.proc->on_message(ctx, ev.from, *round_tripped);
  } else {
    slot.proc->on_message(ctx, ev.from, ev.msg);
  }
}

bool World::step() {
  if (queue_.empty()) return false;
  RR_ASSERT_MSG(executed_ < opts_.max_events,
                "event budget exhausted: likely livelock in a protocol");
  Event ev = queue_.top();
  queue_.pop();
  executed_++;
  RR_ASSERT(ev.at >= now_);
  now_ = ev.at;
  if (ev.is_delivery) {
    deliver(ev);
  } else {
    auto& slot = procs_[static_cast<std::size_t>(ev.to)];
    if (!slot.crashed) {
      WorldContext ctx(*this, ev.to);
      ev.fn(ctx);
    }
  }
  return true;
}

std::uint64_t World::run() {
  std::uint64_t n = 0;
  while (step()) ++n;
  return n;
}

std::uint64_t World::run_until(Time deadline) {
  std::uint64_t n = 0;
  while (!queue_.empty() && queue_.top().at <= deadline && step()) ++n;
  if (now_ < deadline) now_ = deadline;
  return n;
}

}  // namespace rr::sim
