// Message delay models for the discrete-event simulator.
//
// The paper's model is fully asynchronous: channel delays are finite but
// unbounded and chosen by an adversary. The simulator realizes this with a
// pluggable DelayModel for the "background" asynchrony plus explicit
// per-channel holds (sim::World::hold) for surgically scheduled runs such as
// the Figure 1 constructions.
#pragma once

#include <algorithm>
#include <memory>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace rr::sim {

class DelayModel {
 public:
  virtual ~DelayModel() = default;
  /// Delay in virtual nanoseconds for a message from -> to sent at `now`.
  [[nodiscard]] virtual Time sample(ProcessId from, ProcessId to, Time now,
                                    Rng& rng) = 0;
};

/// Gray (slow-but-alive) overlay: scales a sampled delay by a per-process
/// multiplier. Applied by the World on top of whatever DelayModel is
/// installed (World::set_gray), so any base model composes with gray
/// endpoints. Factors <= 1 are identity -- gray only ever slows a channel,
/// which keeps the run inside the asynchronous model (delays stay finite).
[[nodiscard]] inline Time scale_delay(Time d, double factor) {
  if (factor <= 1.0) return d;
  return static_cast<Time>(static_cast<double>(d) * factor);
}

/// Constant delay: handy for reasoning about exact round counts.
class FixedDelay final : public DelayModel {
 public:
  explicit FixedDelay(Time d) : d_(d) {}
  Time sample(ProcessId, ProcessId, Time, Rng&) override { return d_; }

 private:
  Time d_;
};

/// Uniform delay in [lo, hi]: the default "benign asynchrony" model.
class UniformDelay final : public DelayModel {
 public:
  UniformDelay(Time lo, Time hi) : lo_(lo), hi_(std::max(lo, hi)) {}
  Time sample(ProcessId, ProcessId, Time, Rng& rng) override {
    return rng.uniform(lo_, hi_);
  }

 private:
  Time lo_;
  Time hi_;
};

/// Heavy-tailed delays: mostly fast, occasionally very slow. Stresses the
/// quorum logic by making stragglers realistic, as in a congested network.
class HeavyTailDelay final : public DelayModel {
 public:
  HeavyTailDelay(Time base, Time tail, double tail_probability)
      : base_(base), tail_(tail), p_(tail_probability) {}
  Time sample(ProcessId, ProcessId, Time, Rng& rng) override {
    Time d = rng.uniform(base_ / 2, base_);
    if (rng.chance(p_)) d += rng.uniform(0, tail_);
    return d;
  }

 private:
  Time base_;
  Time tail_;
  double p_;
};

/// Deterministically favours low-index objects: replies from high-index
/// objects always straggle. Used to force specific quorum compositions.
class BiasedDelay final : public DelayModel {
 public:
  BiasedDelay(Time unit, int pivot) : unit_(unit), pivot_(pivot) {}
  Time sample(ProcessId from, ProcessId to, Time, Rng&) override {
    const ProcessId key = std::max(from, to);
    return unit_ + (key >= pivot_ ? unit_ * 64 : 0);
  }

 private:
  Time unit_;
  ProcessId pivot_;
};

}  // namespace rr::sim
