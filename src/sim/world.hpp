// Deterministic discrete-event simulator for asynchronous message passing.
//
// The World owns a set of processes (net::Process automata), a virtual
// clock, and an event queue of pending message deliveries and scheduled
// closures. Channels are reliable point-to-point links whose delays come
// from a pluggable DelayModel; on top of that, individual channels can be
// *held* (messages buffered indefinitely, realizing the proofs'
// "messages remain in transit") and later *released*, and processes can be
// crashed at any point.
//
// Everything is deterministic given the seed: events are ordered by
// (virtual time, insertion sequence).
//
// Hot-path design (the simulator is the throughput ceiling for every
// experiment in this reproduction):
//   - The event slab is struct-of-arrays: the hot (at, seq, dest) key
//     fields the 4-ary min-heap compares live in their own densely packed
//     array (EventKey, 24 bytes), separate from the cold payload array
//     (EventBody: Message plus closure). Heap sift-up/down touches only
//     keys, so one cache line serves two sibling comparisons instead of
//     dragging ~100-byte events through the cache.
//   - Slab slots are recycled through a free list; step() *moves* the due
//     body out of its slot, so messages -- including regular-storage
//     histories -- are never deep-copied after send, and a steady-state
//     delivery performs no heap allocation.
//   - run()/run_until() deliver runs of events with equal (time, dest) as
//     one batch: the context, destination slot, and crash check are set up
//     once per run instead of once per message. Order is untouched -- a
//     batch is exactly a prefix of the (at, seq) sort, and events created
//     while the batch runs always sort after it (larger seq, at >= now).
//   - Posted closures are net::PostFn (small-buffer callables), so timer
//     posts with harness-sized captures never heap-allocate.
//   - Byte accounting uses wire::encoded_size(), a counting visitor that
//     never materializes the encoded bytes.
//   - Per-type stats are fixed arrays indexed by Message::variant index;
//     the held-channel check is a packed-key flag table behind a
//     held-channel count so the common no-holds case is a single branch.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <utility>
#include <variant>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "net/faults.hpp"
#include "net/process.hpp"
#include "net/stats.hpp"
#include "sim/delay.hpp"
#include "wire/messages.hpp"

namespace rr::sim {

/// Traffic statistics now live in net::NetStats (shared with the threaded
/// cluster so cross-backend experiments account traffic identically).
using NetStats = net::NetStats;

struct WorldOptions {
  std::uint64_t seed{1};
  /// Account encoded bytes for every message (needed by the Section 5.1
  /// experiments; small constant cost).
  bool account_bytes{true};
  /// Round-trip every message through the binary codec. Proves automata
  /// depend only on message contents; on by default in tests.
  bool reserialize{false};
  /// Hard cap on executed events (guards against non-terminating bugs).
  std::uint64_t max_events{50'000'000};
  /// Maintain a running hash of the executed schedule (time, destination,
  /// event kind, message type of every event, in execution order). Two runs
  /// with the same seed and inputs produce the same fingerprint; any
  /// divergence in delivery order changes it. Off by default: it costs a
  /// handful of arithmetic ops per event on the hot path.
  bool trace_fingerprint{false};
};

class World {
 public:
  using Options = WorldOptions;

  explicit World(Options opts = {});
  ~World();

  World(const World&) = delete;
  World& operator=(const World&) = delete;

  /// Registers a process; ids are assigned densely in registration order so
  /// they match Topology when registered in writer, readers, objects order.
  ProcessId add_process(std::unique_ptr<net::Process> p);

  /// Replaces the automaton behind `pid` (used to swap honest objects for
  /// Byzantine impostors after topology construction).
  void replace_process(ProcessId pid, std::unique_ptr<net::Process> p);

  void set_delay_model(std::unique_ptr<DelayModel> m);

  /// Calls on_start on every process (in id order) at time 0.
  void start();

  /// Schedules `fn` to run as a step of process `pid` at virtual time `at`
  /// (>= now). Used by harnesses to invoke operations. Closures that fit
  /// PostFn's inline buffer are stored without heap allocation.
  void post(Time at, ProcessId pid, net::PostFn fn);

  /// Crash: the process takes no further steps; all messages to and from it
  /// that are not yet delivered are dropped, as are future sends. Messages
  /// buffered on held channels adjacent to the process are discarded
  /// immediately (counted as dropped) so they do not pin memory for the
  /// rest of the run.
  void crash(ProcessId pid);
  [[nodiscard]] bool crashed(ProcessId pid) const;

  /// Holds a channel: messages sent from -> to are buffered, not scheduled.
  void hold(ProcessId from, ProcessId to);
  /// Holds every channel adjacent to `pid` (both directions, all peers
  /// except the self-channel pid -> pid, which local computation never
  /// uses).
  void hold_all(ProcessId pid);
  /// Releases a channel; buffered messages are scheduled for delivery with
  /// fresh delays starting at the current time. FIFO order is preserved.
  void release(ProcessId from, ProcessId to);
  void release_all(ProcessId pid);
  [[nodiscard]] bool held(ProcessId from, ProcessId to) const;

  /// Installs probabilistic link faults (loss / duplication / reorder).
  /// Sampling draws from a dedicated RNG stream seeded by `lf.seed`, so the
  /// base delay sequence of unaffected channels is untouched. Loss and
  /// duplication apply at send time (before hold buffering); reorder defers
  /// a scheduled delivery by `lf.reorder_delay`.
  void set_link_faults(const net::LinkFaults& lf);

  /// Marks `pid` gray (slow-but-alive): sampled delays on every channel
  /// adjacent to it are multiplied by `factor` (the larger endpoint factor
  /// wins). `factor <= 1` clears the mark. Models a process that answers
  /// everything, just slowly -- legal under the asynchronous model.
  void set_gray(ProcessId pid, double factor);

  /// Skews `pid`'s local clock: Context::now() during its steps returns
  /// now() + offset (clamped at 0). The global event clock is untouched, so
  /// schedules -- and fingerprints -- only change if an automaton acts on
  /// its local reading.
  void set_clock_skew(ProcessId pid, std::int64_t offset);

  /// `pid`'s local clock reading (now() unless skewed).
  [[nodiscard]] Time local_now(ProcessId pid) const {
    if (skew_.empty() || static_cast<std::size_t>(pid) >= skew_.size()) {
      return now_;
    }
    const std::int64_t off = skew_[static_cast<std::size_t>(pid)];
    if (off >= 0) return now_ + static_cast<Time>(off);
    const auto back = static_cast<Time>(-off);
    return now_ > back ? now_ - back : 0;
  }

  /// Executes the next event. Returns false when the queue is empty.
  bool step();

  /// Runs until no events remain (messages held on held channels do not
  /// count). Returns the number of events executed. Consecutive deliveries
  /// to the same destination at the same time are dispatched as one batch;
  /// execution order is identical to repeated step().
  std::uint64_t run();

  /// Runs until the virtual clock would pass `deadline` (events at exactly
  /// `deadline` are executed). Returns events executed.
  std::uint64_t run_until(Time deadline);

  [[nodiscard]] Time now() const { return now_; }

  /// Running hash of the executed schedule (see
  /// WorldOptions::trace_fingerprint). 0 until an event executes with
  /// tracing on; bit-identical across runs for identical schedules.
  [[nodiscard]] std::uint64_t schedule_fingerprint() const { return fp_; }

  [[nodiscard]] Rng& rng() { return rng_; }
  [[nodiscard]] const NetStats& stats() const { return stats_; }
  NetStats& mutable_stats() { return stats_; }
  [[nodiscard]] int num_processes() const {
    return static_cast<int>(procs_.size());
  }
  [[nodiscard]] net::Process& process(ProcessId pid);

 private:
  friend class WorldContext;

  using EventIndex = std::uint32_t;

  /// Hot half of the event slab: everything the heap order and the batch
  /// scan need, 24 bytes per event. keys_[i] and bodies_[i] describe the
  /// same event.
  struct EventKey {
    Time at{};
    std::uint64_t seq{};
    ProcessId dest{kNoProcess};
    bool is_delivery{false};
  };

  /// Cold half: the payload moved out when the event executes.
  struct EventBody {
    ProcessId from{kNoProcess};
    wire::Message msg{};
    net::PostFn fn{};
  };

  struct ProcSlot {
    std::unique_ptr<net::Process> proc;
    Rng rng;
    bool crashed{false};
  };

  void do_send(ProcessId from, ProcessId to, wire::Message msg);
  void schedule_delivery(ProcessId from, ProcessId to, wire::Message msg,
                         Time at);
  /// Samples the channel delay and applies the gray multiplier of either
  /// endpoint (used by do_send and by release re-injection).
  [[nodiscard]] Time channel_delay(ProcessId from, ProcessId to);
  /// Non-held scheduling with the reorder rule applied; used per copy.
  void schedule_with_faults(ProcessId from, ProcessId to, wire::Message msg);
  /// Executes one event plus, for deliveries, the whole run of queued
  /// deliveries with the same (time, dest). Returns events executed.
  std::uint64_t step_batch();
  /// Runs one delivery's handler (crash filtering + reserialize + stats).
  void deliver_one(net::Context& ctx, ProcSlot& slot, ProcessId from,
                   wire::Message& msg);

  /// Folds one executed event into the schedule fingerprint (SplitMix64
  /// finalizer over (at, dest, from, kind)). Caller checks the option flag.
  void fp_note(const EventKey& key, const EventBody& body);

  // Slab + free list + index heap.
  [[nodiscard]] EventIndex alloc_event();
  [[nodiscard]] bool event_before(EventIndex a, EventIndex b) const {
    const EventKey& ka = keys_[a];
    const EventKey& kb = keys_[b];
    if (ka.at != kb.at) return ka.at < kb.at;
    return ka.seq < kb.seq;
  }
  void heap_push(EventIndex idx);
  [[nodiscard]] EventIndex heap_pop();

  // Held-channel bookkeeping. Channel keys pack (from, to) into one u64;
  // the flag table is a flat n*n byte array for O(1) membership tests.
  [[nodiscard]] static std::uint64_t chan_key(ProcessId from, ProcessId to) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(from))
            << 32) |
           static_cast<std::uint32_t>(to);
  }
  void ensure_flag_capacity();
  [[nodiscard]] bool chan_flag(ProcessId from, ProcessId to) const {
    const auto f = static_cast<std::size_t>(from);
    const auto t = static_cast<std::size_t>(to);
    return f < flag_stride_ && t < flag_stride_ &&
           held_flags_[f * flag_stride_ + t] != 0;
  }

  Options opts_;
  Rng rng_;
  Time now_{0};
  std::uint64_t next_seq_{0};
  std::uint64_t executed_{0};
  std::uint64_t fp_{0};
  std::vector<ProcSlot> procs_;

  std::vector<EventKey> keys_;      ///< event slab, hot (at, seq, dest) half
  std::vector<EventBody> bodies_;   ///< event slab, payload half
  std::vector<EventIndex> free_;    ///< recycled slab slots
  std::vector<EventIndex> heap_;    ///< 4-ary min-heap of slab indices

  // Held-channel buffers live in a pooled arena: each held channel owns one
  // recycled std::vector<Message> (FIFO by construction -- buffers are only
  // appended to, and drained whole on release/crash). Returning a drained
  // buffer to the free list keeps its capacity, so steady-state hold/release
  // waves buffer messages without per-message or per-wave allocation.
  using BufferIndex = std::uint32_t;
  [[nodiscard]] BufferIndex alloc_buffer();
  void recycle_buffer(BufferIndex idx);

  std::size_t held_count_{0};       ///< number of currently held channels
  std::size_t flag_stride_{0};      ///< row width of held_flags_
  std::vector<std::uint8_t> held_flags_;
  std::unordered_map<std::uint64_t, BufferIndex> held_buffers_;
  std::vector<std::vector<wire::Message>> buffer_pool_;
  std::vector<BufferIndex> buffer_free_;

  // Gray-failure library state. All empty/disabled by default: the hot path
  // pays one predictable branch (link_enabled_, gray_.empty()) per send.
  net::LinkFaults link_faults_{};
  bool link_enabled_{false};
  Rng link_rng_{0};                 ///< dedicated stream for fault sampling
  std::vector<double> gray_;        ///< per-pid delay multiplier (1 = none)
  std::vector<std::int64_t> skew_;  ///< per-pid local-clock offset

  std::unique_ptr<DelayModel> delay_;
  NetStats stats_;
};

}  // namespace rr::sim
