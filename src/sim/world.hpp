// Deterministic discrete-event simulator for asynchronous message passing.
//
// The World owns a set of processes (net::Process automata), a virtual
// clock, and an event queue of pending message deliveries and scheduled
// closures. Channels are reliable point-to-point links whose delays come
// from a pluggable DelayModel; on top of that, individual channels can be
// *held* (messages buffered indefinitely, realizing the proofs'
// "messages remain in transit") and later *released*, and processes can be
// crashed at any point.
//
// Everything is deterministic given the seed: events are ordered by
// (virtual time, insertion sequence).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <queue>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "net/process.hpp"
#include "sim/delay.hpp"
#include "wire/messages.hpp"

namespace rr::sim {

/// Aggregate traffic statistics, broken down by message type index.
struct NetStats {
  std::uint64_t messages_sent{0};
  std::uint64_t messages_delivered{0};
  std::uint64_t messages_dropped{0};  ///< sent to crashed processes
  std::uint64_t bytes_sent{0};
  std::map<std::size_t, std::uint64_t> messages_by_type;
  std::map<std::size_t, std::uint64_t> bytes_by_type;
};

struct WorldOptions {
  std::uint64_t seed{1};
  /// Account encoded bytes for every message (needed by the Section 5.1
  /// experiments; small constant cost).
  bool account_bytes{true};
  /// Round-trip every message through the binary codec. Proves automata
  /// depend only on message contents; on by default in tests.
  bool reserialize{false};
  /// Hard cap on executed events (guards against non-terminating bugs).
  std::uint64_t max_events{50'000'000};
};

class World {
 public:
  using Options = WorldOptions;

  explicit World(Options opts = {});
  ~World();

  World(const World&) = delete;
  World& operator=(const World&) = delete;

  /// Registers a process; ids are assigned densely in registration order so
  /// they match Topology when registered in writer, readers, objects order.
  ProcessId add_process(std::unique_ptr<net::Process> p);

  /// Replaces the automaton behind `pid` (used to swap honest objects for
  /// Byzantine impostors after topology construction).
  void replace_process(ProcessId pid, std::unique_ptr<net::Process> p);

  void set_delay_model(std::unique_ptr<DelayModel> m);

  /// Calls on_start on every process (in id order) at time 0.
  void start();

  /// Schedules `fn` to run as a step of process `pid` at virtual time `at`
  /// (>= now). Used by harnesses to invoke operations.
  void post(Time at, ProcessId pid, std::function<void(net::Context&)> fn);

  /// Crash: the process takes no further steps; all messages to and from it
  /// that are not yet delivered are dropped, as are future sends.
  void crash(ProcessId pid);
  [[nodiscard]] bool crashed(ProcessId pid) const;

  /// Holds a channel: messages sent from -> to are buffered, not scheduled.
  void hold(ProcessId from, ProcessId to);
  /// Holds every channel adjacent to `pid` (both directions, all peers).
  void hold_all(ProcessId pid);
  /// Releases a channel; buffered messages are scheduled for delivery with
  /// fresh delays starting at the current time. FIFO order is preserved.
  void release(ProcessId from, ProcessId to);
  void release_all(ProcessId pid);
  [[nodiscard]] bool held(ProcessId from, ProcessId to) const;

  /// Executes the next event. Returns false when the queue is empty.
  bool step();

  /// Runs until no events remain (messages held on held channels do not
  /// count). Returns the number of events executed.
  std::uint64_t run();

  /// Runs until the virtual clock would pass `deadline` (events at exactly
  /// `deadline` are executed). Returns events executed.
  std::uint64_t run_until(Time deadline);

  [[nodiscard]] Time now() const { return now_; }
  [[nodiscard]] Rng& rng() { return rng_; }
  [[nodiscard]] const NetStats& stats() const { return stats_; }
  NetStats& mutable_stats() { return stats_; }
  [[nodiscard]] int num_processes() const {
    return static_cast<int>(procs_.size());
  }
  [[nodiscard]] net::Process& process(ProcessId pid);

 private:
  friend class WorldContext;

  struct Event {
    Time at{};
    std::uint64_t seq{};
    // Exactly one of the two is active.
    bool is_delivery{false};
    ProcessId from{kNoProcess};
    ProcessId to{kNoProcess};
    wire::Message msg{};
    std::function<void(net::Context&)> fn{};
  };

  struct EventLater {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  struct ProcSlot {
    std::unique_ptr<net::Process> proc;
    Rng rng;
    bool crashed{false};
  };

  void do_send(ProcessId from, ProcessId to, wire::Message msg);
  void schedule_delivery(ProcessId from, ProcessId to, wire::Message msg,
                         Time at);
  void deliver(const Event& ev);

  Options opts_;
  Rng rng_;
  Time now_{0};
  std::uint64_t next_seq_{0};
  std::uint64_t executed_{0};
  std::vector<ProcSlot> procs_;
  std::priority_queue<Event, std::vector<Event>, EventLater> queue_;
  std::map<std::pair<ProcessId, ProcessId>, std::deque<wire::Message>> held_;
  std::unique_ptr<DelayModel> delay_;
  NetStats stats_;
};

}  // namespace rr::sim
