// Operation result types shared by all client automata in the library.
#pragma once

#include <functional>

#include "common/types.hpp"

namespace rr::core {

/// Outcome of a completed WRITE operation.
struct WriteResult {
  Ts ts{};           ///< timestamp assigned to the written value
  int rounds{};      ///< communication round-trips used (paper metric)
  Time invoked_at{};
  Time completed_at{};

  [[nodiscard]] Time latency() const { return completed_at - invoked_at; }
};

/// Outcome of a completed READ operation.
struct ReadResult {
  TsVal tsval{};       ///< returned value with its writer timestamp
  int rounds{};        ///< communication round-trips used
  Time invoked_at{};
  Time completed_at{};
  /// True when the read returned the default/initial value because the
  /// candidate set drained (only possible under concurrency; see Figure 4
  /// lines 15-16) or, for the optimized regular reader, because it fell back
  /// to its cache (Section 5.1).
  bool returned_default{false};

  [[nodiscard]] Time latency() const { return completed_at - invoked_at; }
};

using WriteCallback = std::function<void(const WriteResult&)>;
using ReadCallback = std::function<void(const ReadResult&)>;

}  // namespace rr::core
