// Reader automaton of the SWMR *regular* storage (paper Figure 6).
//
// Same two-round communication pattern as the safe reader, but objects reply
// with write-history *deltas* (Figure 5 + the Section 5.1 suffix idea driven
// to its ack-based conclusion): the reader keeps a persistent per-object
// history mirror, tells each object the top slot it has already merged
// (HistReadMsg::have), and receives only the suffix past it. The
// value-selection predicates are per-timestamp-slot over the mirrors:
//   safe(c):    >= b+1 objects confirm slot c.ts with c's pair/tuple,
//   invalid(c): >= t+b+1 objects deny slot c.ts (missing or mismatching).
//
// With `optimized` set (Section 5.1), the reader also sends the timestamp of
// the last value it returned (cache_ts); objects treat max(have, cache_ts)
// as the reader's acked floor. If the candidate set drains, the reader falls
// back to the cache. Mirrors are pruned below the cache after every read, so
// reader memory tracks the cache window, not the full history.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "core/client_api.hpp"
#include "core/client_types.hpp"
#include "net/process.hpp"
#include "wire/messages.hpp"

namespace rr::core {

class RegularReader : public ReaderClient {
 public:
  RegularReader(const Resilience& res, const Topology& topo, int reader_index,
                bool optimized);

  void read(net::Context& ctx, ReadCallback cb) override;

  void on_message(net::Context& ctx, ProcessId from,
                  const wire::Message& msg) override;

  [[nodiscard]] bool busy() const { return phase_ != Phase::Idle; }
  [[nodiscard]] bool optimized() const { return optimized_; }
  [[nodiscard]] const TsVal& cache() const { return cache_; }

  struct Diag {
    int round1_acks{0};
    int round2_acks{0};
    std::uint64_t history_slots_received{0};
    std::uint64_t resyncs{0};  ///< flagged-resync replies merged (lifetime)
    int candidates_added{0};
    int candidates_removed{0};
    bool returned_from_cache{false};
  };
  [[nodiscard]] const Diag& diag() const { return diag_; }

  /// Top history slot merged from object i (the `have` sent to it).
  [[nodiscard]] Ts have(std::size_t i) const { return have_[i]; }
  /// Persistent history mirror of object i (test/diagnostic access).
  [[nodiscard]] const wire::History& mirror(std::size_t i) const {
    return mirror_[i];
  }

 private:
  enum class Phase { Idle, Round1, Round2 };

  struct Candidate {
    WTuple tuple;
    bool removed{false};
    /// Any tsrarray entry for this reader above tsrFR (Figure 6 line 1's
    /// accusation predicate, precomputed at insertion): only such a
    /// candidate can ever induce a conflict edge, so round1_complete()
    /// skips the graph entirely while none exists -- the common case.
    bool accuses{false};
  };

  void handle_ack(net::Context& ctx, ProcessId from,
                  const wire::HistReadAckMsg& m);
  void merge_delta(std::size_t i, const wire::HistReadAckMsg& m);
  void add_candidates_from_mirror(std::size_t i);
  void sweep_removals();

  /// Whether object i replied in the given round of the current read; the
  /// paper's history[rnd][i] lookup, with the mirror standing in for the
  /// shipped history (the mirror *is* what full-suffix shipping would have
  /// delivered, accumulated incrementally).
  [[nodiscard]] bool replied(int rnd, std::size_t i) const;

  [[nodiscard]] bool conflict(std::size_t i, std::size_t k) const;
  [[nodiscard]] bool round1_complete() const;
  void start_round2(net::Context& ctx);

  [[nodiscard]] bool object_vouches(std::size_t i, const WTuple& c) const;
  [[nodiscard]] bool object_denies(std::size_t i, const WTuple& c) const;
  [[nodiscard]] bool is_safe(const WTuple& c) const;
  [[nodiscard]] bool is_invalid(const WTuple& c) const;
  void try_finish(net::Context& ctx);
  void complete(net::Context& ctx, TsVal v, bool from_cache);

  Resilience res_;
  Topology topo_;
  int reader_index_;
  bool optimized_;

  // Persistent state.
  ReaderTs tsr_{0};
  TsVal cache_{TsVal::bottom()};  ///< last returned value (Section 5.1)
  std::vector<wire::History> mirror_;  ///< per-object merged history
  std::vector<Ts> have_;               ///< per-object top merged slot

  // Per-read state.
  Phase phase_{Phase::Idle};
  ReaderTs tsr_first_round_{0};
  Ts request_cache_ts_{0};  ///< cache.ts snapshot sent with this read
  std::vector<std::uint8_t> replied1_;
  std::vector<std::uint8_t> replied2_;
  std::vector<Candidate> candidates_;
  ReadCallback cb_;
  Time invoked_at_{0};
  Diag diag_{};
};

}  // namespace rr::core
