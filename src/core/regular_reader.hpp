// Reader automaton of the SWMR *regular* storage (paper Figure 6).
//
// Same two-round communication pattern as the safe reader, but objects reply
// with their whole write *history* (Figure 5), and the value-selection
// predicates become per-timestamp-slot:
//   safe(c):    >= b+1 objects confirm slot c.ts with c's pair/tuple,
//   invalid(c): >= t+b+1 objects deny slot c.ts (missing or mismatching).
//
// With `optimized` set (Section 5.1), the reader caches the last value it
// returned and asks objects only for the history suffix from the cached
// timestamp; if the candidate set drains, it falls back to the cache.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/types.hpp"
#include "core/client_api.hpp"
#include "core/client_types.hpp"
#include "net/process.hpp"
#include "wire/messages.hpp"

namespace rr::core {

class RegularReader : public ReaderClient {
 public:
  RegularReader(const Resilience& res, const Topology& topo, int reader_index,
                bool optimized);

  void read(net::Context& ctx, ReadCallback cb) override;

  void on_message(net::Context& ctx, ProcessId from,
                  const wire::Message& msg) override;

  [[nodiscard]] bool busy() const { return phase_ != Phase::Idle; }
  [[nodiscard]] bool optimized() const { return optimized_; }
  [[nodiscard]] const TsVal& cache() const { return cache_; }

  struct Diag {
    int round1_acks{0};
    int round2_acks{0};
    std::uint64_t history_slots_received{0};
    int candidates_added{0};
    int candidates_removed{0};
    bool returned_from_cache{false};
  };
  [[nodiscard]] const Diag& diag() const { return diag_; }

 private:
  enum class Phase { Idle, Round1, Round2 };

  struct Candidate {
    WTuple tuple;
    bool removed{false};
  };

  void handle_ack(net::Context& ctx, ProcessId from,
                  const wire::HistReadAckMsg& m);
  void add_candidates_from(const wire::History& h);
  void sweep_removals();

  /// The paper's history[rnd][i][ts] lookup; nullopt when object i has not
  /// replied in round rnd. A reply without slot ts reads as <nil, nil>.
  [[nodiscard]] const wire::History* replied_history(int rnd,
                                                     std::size_t i) const;

  [[nodiscard]] bool conflict(std::size_t i, std::size_t k) const;
  [[nodiscard]] bool round1_complete() const;
  void start_round2(net::Context& ctx);

  [[nodiscard]] bool object_vouches(std::size_t i, const WTuple& c) const;
  [[nodiscard]] bool object_denies(std::size_t i, const WTuple& c) const;
  [[nodiscard]] bool is_safe(const WTuple& c) const;
  [[nodiscard]] bool is_invalid(const WTuple& c) const;
  void try_finish(net::Context& ctx);
  void complete(net::Context& ctx, TsVal v, bool from_cache);

  Resilience res_;
  Topology topo_;
  int reader_index_;
  bool optimized_;

  // Persistent state.
  ReaderTs tsr_{0};
  TsVal cache_{TsVal::bottom()};  ///< last returned value (Section 5.1)

  // Per-read state.
  Phase phase_{Phase::Idle};
  ReaderTs tsr_first_round_{0};
  Ts request_cache_ts_{0};  ///< cache.ts snapshot sent with this read
  std::vector<std::optional<wire::History>> hist1_;
  std::vector<std::optional<wire::History>> hist2_;
  std::vector<Candidate> candidates_;
  ReadCallback cb_;
  Time invoked_at_{0};
  Diag diag_{};
};

}  // namespace rr::core
