// Protocol-agnostic client automaton interfaces.
//
// Every protocol family in the library exposes the same two client
// operations -- WRITE(v) by the single writer, READ() by a reader -- so the
// harness (Deployment, workloads, the sharding adapters) can drive any
// protocol through these interfaces without knowing the concrete automaton
// type. Invoking an operation is itself a step of the client automaton: it
// runs inside a Context (under either backend) and the callback fires from
// within the automaton step that completes the operation.
#pragma once

#include "core/client_types.hpp"
#include "net/process.hpp"

namespace rr::core {

/// A writer automaton of some protocol: net::Process plus the WRITE
/// invocation. One operation at a time (Section 2.2).
class WriterClient : public net::Process {
 public:
  virtual void write(net::Context& ctx, Value v, WriteCallback cb) = 0;
};

/// A reader automaton of some protocol: net::Process plus the READ
/// invocation. One operation at a time per reader (Section 2.2).
class ReaderClient : public net::Process {
 public:
  virtual void read(net::Context& ctx, ReadCallback cb) = 0;
};

}  // namespace rr::core
