#include "core/writer.hpp"

#include <utility>

namespace rr::core {

Writer::Writer(const Resilience& res, const Topology& topo)
    : res_(res), topo_(topo) {
  RR_ASSERT(res.valid());
  RR_ASSERT(topo.num_objects() == res.num_objects);
  w_ = initial_wtuple(static_cast<std::size_t>(res.num_objects));
}

void Writer::write(net::Context& ctx, Value v, WriteCallback cb) {
  RR_ASSERT_MSG(phase_ == Phase::Idle,
                "WRITE invoked while previous WRITE in progress");
  // Figure 2 lines 3-5.
  ++ts_;
  current_tsrarray_ = init_tsrarray(static_cast<std::size_t>(res_.num_objects));
  pw_ = TsVal{ts_, std::move(v)};
  pw_acked_.assign(static_cast<std::size_t>(res_.num_objects), false);
  w_acked_.assign(static_cast<std::size_t>(res_.num_objects), false);
  pw_ack_count_ = 0;
  w_ack_count_ = 0;
  cb_ = std::move(cb);
  invoked_at_ = ctx.now();
  phase_ = Phase::Pw;
  rounds_ = 1;
  // The PW message carries the previous write's tuple in `w`, completing
  // that write at objects which missed its W round.
  for (int i = 0; i < res_.num_objects; ++i) {
    ctx.send(topo_.object(i), wire::PwMsg{ts_, pw_, w_});
  }
}

void Writer::on_message(net::Context& ctx, ProcessId from,
                        const wire::Message& msg) {
  if (const auto* ack = std::get_if<wire::PwAckMsg>(&msg)) {
    handle_pw_ack(ctx, from, *ack);
  } else if (const auto* ack2 = std::get_if<wire::WAckMsg>(&msg)) {
    handle_w_ack(ctx, from, *ack2);
  }
}

void Writer::handle_pw_ack(net::Context& ctx, ProcessId from,
                           const wire::PwAckMsg& m) {
  if (phase_ != Phase::Pw || m.ts != ts_) return;  // stale or foreign ack
  if (!topo_.is_object(from)) return;
  const auto i = static_cast<std::size_t>(topo_.object_index(from));
  if (pw_acked_[i]) return;  // at most one row per object per write
  pw_acked_[i] = true;
  ++pw_ack_count_;
  // Figure 2 line 11: record the object's reader-timestamp row. A Byzantine
  // object may report a row of the wrong width; normalize to R entries
  // (missing entries read as 0, i.e. "no conflict evidence") so that
  // downstream indexing is total.
  TsrRow row = m.tsr;
  row.resize(static_cast<std::size_t>(topo_.num_readers()), 0);
  current_tsrarray_[i] = std::move(row);

  if (pw_ack_count_ >= res_.quorum()) {
    // Figure 2 lines 7-8: snapshot the harvested rows into the tuple and
    // enter the W round.
    w_ = WTuple{pw_, current_tsrarray_};
    phase_ = Phase::W;
    rounds_ = 2;
    for (int k = 0; k < res_.num_objects; ++k) {
      ctx.send(topo_.object(k), wire::WMsg{ts_, pw_, w_});
    }
  }
}

void Writer::handle_w_ack(net::Context& ctx, ProcessId from,
                          const wire::WAckMsg& m) {
  if (phase_ != Phase::W || m.ts != ts_) return;
  if (!topo_.is_object(from)) return;
  const auto i = static_cast<std::size_t>(topo_.object_index(from));
  if (w_acked_[i]) return;
  w_acked_[i] = true;
  ++w_ack_count_;
  if (w_ack_count_ >= res_.quorum()) complete(ctx);
}

void Writer::complete(net::Context& ctx) {
  phase_ = Phase::Idle;
  WriteResult result;
  result.ts = ts_;
  result.rounds = rounds_;
  result.invoked_at = invoked_at_;
  result.completed_at = ctx.now();
  // Move the callback out first: it may immediately invoke the next write.
  auto cb = std::move(cb_);
  cb_ = nullptr;
  if (cb) cb(result);
}

}  // namespace rr::core
