// Writer automaton of the Guerraoui-Vukolic storage (paper Figure 2).
//
// The same two-round writer drives both the safe storage (over
// objects::SafeObject) and the regular storage (over objects::RegularObject):
// the wire protocol is identical, only object-side bookkeeping differs.
//
// Round 1 (PW): sends the fresh pair <ts, v> together with the *previous*
// write's full tuple, and harvests each object's reader-timestamp row from
// the PW_ACKs. Round 2 (W): embeds the harvested rows (currenttsrarray) into
// the tuple it stores. The embedded rows are what allow readers to detect
// forged tuples: a tuple claiming object i reported a reader timestamp the
// reader never issued is evidence of malice (Figure 4's conflict predicate).
#pragma once

#include <vector>

#include "common/assert.hpp"
#include "common/types.hpp"
#include "core/client_api.hpp"
#include "core/client_types.hpp"
#include "net/process.hpp"

namespace rr::core {

class Writer : public WriterClient {
 public:
  Writer(const Resilience& res, const Topology& topo);

  /// Invokes WRITE(v). Must not be called while a write is in progress
  /// (clients invoke one operation at a time, Section 2.2). `cb` fires from
  /// within the automaton step that completes the write.
  void write(net::Context& ctx, Value v, WriteCallback cb) override;

  void on_message(net::Context& ctx, ProcessId from,
                  const wire::Message& msg) override;

  [[nodiscard]] bool busy() const { return phase_ != Phase::Idle; }
  [[nodiscard]] Ts current_ts() const { return ts_; }

 private:
  enum class Phase { Idle, Pw, W };

  void handle_pw_ack(net::Context& ctx, ProcessId from,
                     const wire::PwAckMsg& m);
  void handle_w_ack(net::Context& ctx, ProcessId from, const wire::WAckMsg& m);
  void complete(net::Context& ctx);

  Resilience res_;
  Topology topo_;

  // Persistent protocol state (Figure 2 initialization).
  Ts ts_{0};
  TsVal pw_{TsVal::bottom()};
  WTuple w_;  ///< tuple of the last *completed* write (w0 initially)

  // Per-operation state.
  Phase phase_{Phase::Idle};
  TsrArray current_tsrarray_;
  std::vector<bool> pw_acked_;
  std::vector<bool> w_acked_;
  int pw_ack_count_{0};
  int w_ack_count_{0};
  WriteCallback cb_;
  Time invoked_at_{0};
  int rounds_{0};
};

}  // namespace rr::core
