#include "core/regular_reader.hpp"

#include <algorithm>
#include <utility>

#include "common/assert.hpp"
#include "common/graph.hpp"

namespace rr::core {

RegularReader::RegularReader(const Resilience& res, const Topology& topo,
                             int reader_index, bool optimized)
    : res_(res),
      topo_(topo),
      reader_index_(reader_index),
      optimized_(optimized) {
  RR_ASSERT(res.valid());
  RR_ASSERT(reader_index >= 0 && reader_index < res.num_readers);
  RR_ASSERT_MSG(res.num_objects <= 64,
                "conflict-quorum search uses 64-bit vertex masks");
}

void RegularReader::read(net::Context& ctx, ReadCallback cb) {
  RR_ASSERT_MSG(phase_ == Phase::Idle,
                "READ invoked while previous READ in progress");
  // Figure 6 lines 7-10.
  hist1_.assign(static_cast<std::size_t>(res_.num_objects), std::nullopt);
  hist2_.assign(static_cast<std::size_t>(res_.num_objects), std::nullopt);
  candidates_.clear();
  cb_ = std::move(cb);
  invoked_at_ = ctx.now();
  diag_ = Diag{};
  tsr_first_round_ = ++tsr_;
  request_cache_ts_ = optimized_ ? cache_.ts : 0;
  phase_ = Phase::Round1;
  for (int i = 0; i < res_.num_objects; ++i) {
    ctx.send(topo_.object(i), wire::ReadMsg{1, tsr_, request_cache_ts_});
  }
}

void RegularReader::on_message(net::Context& ctx, ProcessId from,
                               const wire::Message& msg) {
  if (const auto* ack = std::get_if<wire::HistReadAckMsg>(&msg)) {
    handle_ack(ctx, from, *ack);
  }
}

void RegularReader::handle_ack(net::Context& ctx, ProcessId from,
                               const wire::HistReadAckMsg& m) {
  if (!topo_.is_object(from)) return;
  const auto i = static_cast<std::size_t>(topo_.object_index(from));
  // Figure 6 lines 17-25: one reply per object per round (the tsr[i] guard),
  // pattern-matched against the reader's current timestamp.
  if (phase_ == Phase::Round1 && m.round == 1 && m.tsr == tsr_first_round_ &&
      !hist1_[i].has_value()) {
    ++diag_.round1_acks;
    diag_.history_slots_received += m.history.size();
    hist1_[i] = m.history;
    add_candidates_from(m.history);  // Figure 6 line 20
    sweep_removals();
    if (round1_complete()) {
      start_round2(ctx);
      try_finish(ctx);
    }
  } else if (phase_ == Phase::Round2 && m.round == 2 &&
             m.tsr == tsr_first_round_ + 1 && !hist2_[i].has_value()) {
    ++diag_.round2_acks;
    diag_.history_slots_received += m.history.size();
    hist2_[i] = m.history;
    sweep_removals();
    try_finish(ctx);
  }
}

void RegularReader::add_candidates_from(const wire::History& h) {
  for (const auto& [ts, entry] : h) {
    if (!entry.w.has_value()) continue;
    const WTuple& w = *entry.w;
    const bool known = std::any_of(
        candidates_.begin(), candidates_.end(),
        [&](const Candidate& c) { return c.tuple == w; });
    if (!known) {
      candidates_.push_back(Candidate{w, false});
      ++diag_.candidates_added;
    }
  }
}

const wire::History* RegularReader::replied_history(int rnd,
                                                    std::size_t i) const {
  const auto& slot = (rnd == 1) ? hist1_[i] : hist2_[i];
  return slot.has_value() ? &*slot : nullptr;
}

bool RegularReader::object_vouches(std::size_t i, const WTuple& c) const {
  // Figure 6 line 3: some replied round's history confirms slot c.ts with
  // c's pair (pw) or c itself (w).
  for (int rnd = 1; rnd <= 2; ++rnd) {
    const auto* h = replied_history(rnd, i);
    if (h == nullptr) continue;
    const auto it = h->find(c.tsval.ts);
    if (it == h->end()) continue;
    if ((it->second.pw.has_value() && *it->second.pw == c.tsval) ||
        (it->second.w.has_value() && *it->second.w == c)) {
      return true;
    }
  }
  return false;
}

bool RegularReader::object_denies(std::size_t i, const WTuple& c) const {
  // Figure 6 line 2: some replied round's history has no w entry for slot
  // c.ts, or a mismatching pw or w. A missing slot reads as <nil, nil>.
  for (int rnd = 1; rnd <= 2; ++rnd) {
    const auto* h = replied_history(rnd, i);
    if (h == nullptr) continue;
    const auto it = h->find(c.tsval.ts);
    if (it == h->end()) return true;
    const auto& e = it->second;
    if (!e.w.has_value() || !(*e.w == c) || !e.pw.has_value() ||
        !(*e.pw == c.tsval)) {
      return true;
    }
  }
  return false;
}

bool RegularReader::is_safe(const WTuple& c) const {
  int vouchers = 0;
  for (std::size_t i = 0; i < hist1_.size(); ++i) {
    if (object_vouches(i, c)) ++vouchers;
  }
  return vouchers >= res_.b + 1;
}

bool RegularReader::is_invalid(const WTuple& c) const {
  int deniers = 0;
  for (std::size_t i = 0; i < hist1_.size(); ++i) {
    if (object_denies(i, c)) ++deniers;
  }
  return deniers >= res_.t + res_.b + 1;
}

void RegularReader::sweep_removals() {
  // Figure 6 lines 26-27.
  for (auto& cand : candidates_) {
    if (!cand.removed && is_invalid(cand.tuple)) {
      cand.removed = true;
      ++diag_.candidates_removed;
    }
  }
}

bool RegularReader::conflict(std::size_t i, std::size_t k) const {
  // Figure 6 line 1: object k's round-1 history contains a candidate tuple
  // accusing object i of a reader timestamp above tsrFR.
  const auto j = static_cast<std::size_t>(reader_index_);
  const auto* h = replied_history(1, k);
  if (h == nullptr) return false;
  for (const auto& cand : candidates_) {
    if (cand.removed) continue;
    for (const auto& [ts, entry] : *h) {
      if (!entry.w.has_value() || !(*entry.w == cand.tuple)) continue;
      const auto& arr = cand.tuple.tsrarray;
      if (i >= arr.size() || !arr[i].has_value()) continue;
      const auto& row = *arr[i];
      if (j < row.size() && row[j] > tsr_first_round_) return true;
    }
  }
  return false;
}

bool RegularReader::round1_complete() const {
  std::uint64_t responders = 0;
  int count = 0;
  for (std::size_t i = 0; i < hist1_.size(); ++i) {
    if (hist1_[i].has_value()) {
      responders |= 1ULL << i;
      ++count;
    }
  }
  if (count < res_.quorum()) return false;

  std::vector<std::uint64_t> adj(hist1_.size(), 0);
  bool any_edge = false;
  for (std::size_t i = 0; i < hist1_.size(); ++i) {
    if (!(responders & (1ULL << i))) continue;
    for (std::size_t k = i + 1; k < hist1_.size(); ++k) {
      if (!(responders & (1ULL << k))) continue;
      if (conflict(i, k) || conflict(k, i)) {
        adj[i] |= 1ULL << k;
        adj[k] |= 1ULL << i;
        any_edge = true;
      }
    }
  }
  if (!any_edge) return true;
  return has_independent_set(adj, responders, res_.quorum());
}

void RegularReader::start_round2(net::Context& ctx) {
  phase_ = Phase::Round2;
  ++tsr_;
  for (int i = 0; i < res_.num_objects; ++i) {
    ctx.send(topo_.object(i), wire::ReadMsg{2, tsr_, request_cache_ts_});
  }
}

void RegularReader::try_finish(net::Context& ctx) {
  if (phase_ != Phase::Round2) return;
  // Figure 6 lines 14-16, plus the Section 5.1 cache fallback when C drains
  // (in the unoptimized protocol C always retains w0, reported by every
  // correct object's history[0], so the fallback never fires there and the
  // cache is still bottom -- equivalent to the paper's two variants).
  bool any_live = false;
  Ts max_ts = 0;
  for (const auto& cand : candidates_) {
    if (cand.removed) continue;
    any_live = true;
    max_ts = std::max(max_ts, cand.tuple.tsval.ts);
  }
  if (!any_live) {
    diag_.returned_from_cache = true;
    complete(ctx, cache_, /*from_cache=*/true);
    return;
  }
  for (const auto& cand : candidates_) {
    if (cand.removed || cand.tuple.tsval.ts != max_ts) continue;
    if (is_safe(cand.tuple)) {
      complete(ctx, cand.tuple.tsval, /*from_cache=*/false);
      return;
    }
  }
}

void RegularReader::complete(net::Context& ctx, TsVal v, bool from_cache) {
  phase_ = Phase::Idle;
  cache_ = v;  // Section 5.1: remember the last returned value
  ReadResult result;
  result.tsval = std::move(v);
  result.rounds = 2;
  result.invoked_at = invoked_at_;
  result.completed_at = ctx.now();
  result.returned_default = from_cache;
  auto cb = std::move(cb_);
  cb_ = nullptr;
  if (cb) cb(result);
}

}  // namespace rr::core
