#include "core/regular_reader.hpp"

#include <algorithm>
#include <iterator>
#include <utility>

#include "common/assert.hpp"
#include "common/graph.hpp"

namespace rr::core {

RegularReader::RegularReader(const Resilience& res, const Topology& topo,
                             int reader_index, bool optimized)
    : res_(res),
      topo_(topo),
      reader_index_(reader_index),
      optimized_(optimized) {
  RR_ASSERT(res.valid());
  RR_ASSERT(reader_index >= 0 && reader_index < res.num_readers);
  RR_ASSERT_MSG(res.num_objects <= 64,
                "conflict-quorum search uses 64-bit vertex masks");
  mirror_.resize(static_cast<std::size_t>(res.num_objects));
  have_.assign(static_cast<std::size_t>(res.num_objects), 0);
}

void RegularReader::read(net::Context& ctx, ReadCallback cb) {
  RR_ASSERT_MSG(phase_ == Phase::Idle,
                "READ invoked while previous READ in progress");
  // Figure 6 lines 7-10.
  replied1_.assign(static_cast<std::size_t>(res_.num_objects), 0);
  replied2_.assign(static_cast<std::size_t>(res_.num_objects), 0);
  candidates_.clear();
  cb_ = std::move(cb);
  invoked_at_ = ctx.now();
  diag_ = Diag{};
  tsr_first_round_ = ++tsr_;
  request_cache_ts_ = optimized_ ? cache_.ts : 0;
  phase_ = Phase::Round1;
  for (int i = 0; i < res_.num_objects; ++i) {
    const auto ui = static_cast<std::size_t>(i);
    ctx.send(topo_.object(i),
             wire::HistReadMsg{1, tsr_, request_cache_ts_, have_[ui]});
  }
}

void RegularReader::on_message(net::Context& ctx, ProcessId from,
                               const wire::Message& msg) {
  if (const auto* ack = std::get_if<wire::HistReadAckMsg>(&msg)) {
    handle_ack(ctx, from, *ack);
  }
}

void RegularReader::handle_ack(net::Context& ctx, ProcessId from,
                               const wire::HistReadAckMsg& m) {
  if (!topo_.is_object(from)) return;
  const auto i = static_cast<std::size_t>(topo_.object_index(from));
  // Figure 6 lines 17-25: one reply per object per round (the tsr[i] guard),
  // pattern-matched against the reader's current timestamp.
  if (phase_ == Phase::Round1 && m.round == 1 && m.tsr == tsr_first_round_ &&
      !replied1_[i]) {
    ++diag_.round1_acks;
    replied1_[i] = 1;
    merge_delta(i, m);
    add_candidates_from_mirror(i);  // Figure 6 line 20
    sweep_removals();
    if (round1_complete()) {
      start_round2(ctx);
      try_finish(ctx);
    }
  } else if (phase_ == Phase::Round2 && m.round == 2 &&
             m.tsr == tsr_first_round_ + 1 && !replied2_[i]) {
    ++diag_.round2_acks;
    replied2_[i] = 1;
    merge_delta(i, m);
    sweep_removals();
    try_finish(ctx);
  } else if (m.resync == 0) {
    // Late ack (the round closed at a quorum without this object, or the
    // READ already returned): the delta is still a correct suffix of the
    // object's history and the mirror union is monotone, so merge it anyway.
    // Without this, a chronically slow object's `have` floor goes stale and
    // its deltas regrow the O(history) tail. It takes no part in this
    // round's candidate/removal bookkeeping (not marked replied). Resync
    // suffixes are exempt: the mirror rebuild is not monotone and may gap
    // against a floor that has moved on.
    merge_delta(i, m);
  }
}

void RegularReader::merge_delta(std::size_t i, const wire::HistReadAckMsg& m) {
  diag_.history_slots_received += m.history.size();
  if (m.resync != 0) {
    // The object's hard cap evicted slots below our floor: the shipped
    // suffix starts at m.since > floor, so our mirror can no longer be
    // extended gap-free. Rebuild it from the flagged suffix.
    ++diag_.resyncs;
    mirror_[i].clear();
  }
  // Monotone union: an engaged pw/w in the mirror is never regressed to nil
  // by a reordered or replayed delta, so a slot can never flip from vouching
  // back to denying.
  mirror_[i].merge(m.history);
  if (!mirror_[i].empty()) {
    have_[i] = std::prev(mirror_[i].end())->first;
  }
}

void RegularReader::add_candidates_from_mirror(std::size_t i) {
  // Figure 6 line 20 over the mirror: the mirror suffix from the requested
  // cache_ts is exactly the history a full Section 5.1 suffix reply would
  // have carried; the delta only shipped the part we lacked.
  const auto& h = mirror_[i];
  for (auto it = h.lower_bound(request_cache_ts_); it != h.end(); ++it) {
    if (!it->second.w.has_value()) continue;
    const WTuple& w = *it->second.w;
    const bool known = std::any_of(
        candidates_.begin(), candidates_.end(),
        [&](const Candidate& c) { return c.tuple == w; });
    if (!known) {
      const auto j = static_cast<std::size_t>(reader_index_);
      bool accuses = false;
      for (const auto& row : w.tsrarray) {
        if (row.has_value() && j < row->size() && (*row)[j] > tsr_first_round_) {
          accuses = true;
          break;
        }
      }
      candidates_.push_back(Candidate{w, false, accuses});
      ++diag_.candidates_added;
    }
  }
}

bool RegularReader::replied(int rnd, std::size_t i) const {
  return (rnd == 1 ? replied1_[i] : replied2_[i]) != 0;
}

bool RegularReader::object_vouches(std::size_t i, const WTuple& c) const {
  // Figure 6 line 3: a replied object's history confirms slot c.ts with c's
  // pair (pw) or c itself (w). The mirror stands in for the replied
  // histories of both rounds.
  if (!replied(1, i) && !replied(2, i)) return false;
  const auto& h = mirror_[i];
  const auto it = h.find(c.tsval.ts);
  if (it == h.end()) return false;
  return (it->second.pw.has_value() && *it->second.pw == c.tsval) ||
         (it->second.w.has_value() && *it->second.w == c);
}

bool RegularReader::object_denies(std::size_t i, const WTuple& c) const {
  // Figure 6 line 2: a replied object's history has no w entry for slot
  // c.ts, or a mismatching pw or w. A missing slot reads as <nil, nil>.
  if (!replied(1, i) && !replied(2, i)) return false;
  const auto& h = mirror_[i];
  const auto it = h.find(c.tsval.ts);
  if (it == h.end()) return true;
  const auto& e = it->second;
  return !e.w.has_value() || !(*e.w == c) || !e.pw.has_value() ||
         !(*e.pw == c.tsval);
}

bool RegularReader::is_safe(const WTuple& c) const {
  int vouchers = 0;
  for (std::size_t i = 0; i < mirror_.size(); ++i) {
    if (object_vouches(i, c)) ++vouchers;
  }
  return vouchers >= res_.b + 1;
}

bool RegularReader::is_invalid(const WTuple& c) const {
  int deniers = 0;
  for (std::size_t i = 0; i < mirror_.size(); ++i) {
    if (object_denies(i, c)) ++deniers;
  }
  return deniers >= res_.t + res_.b + 1;
}

void RegularReader::sweep_removals() {
  // Figure 6 lines 26-27.
  for (auto& cand : candidates_) {
    if (!cand.removed && is_invalid(cand.tuple)) {
      cand.removed = true;
      ++diag_.candidates_removed;
    }
  }
}

bool RegularReader::conflict(std::size_t i, std::size_t k) const {
  // Figure 6 line 1: object k's round-1 history contains a candidate tuple
  // accusing object i of a reader timestamp above tsrFR.
  const auto j = static_cast<std::size_t>(reader_index_);
  if (!replied(1, k)) return false;
  const auto& h = mirror_[k];
  for (const auto& cand : candidates_) {
    if (cand.removed) continue;
    for (const auto& [ts, entry] : h) {
      if (!entry.w.has_value() || !(*entry.w == cand.tuple)) continue;
      const auto& arr = cand.tuple.tsrarray;
      if (i >= arr.size() || !arr[i].has_value()) continue;
      const auto& row = *arr[i];
      if (j < row.size() && row[j] > tsr_first_round_) return true;
    }
  }
  return false;
}

bool RegularReader::round1_complete() const {
  std::uint64_t responders = 0;
  int count = 0;
  for (std::size_t i = 0; i < replied1_.size(); ++i) {
    if (replied1_[i] != 0) {
      responders |= 1ULL << i;
      ++count;
    }
  }
  if (count < res_.quorum()) return false;

  // No candidate carries an accusing tsr entry for this reader: no conflict
  // edge can exist, so any quorum of responders is independent.
  const bool any_accuser = std::any_of(
      candidates_.begin(), candidates_.end(),
      [](const Candidate& c) { return !c.removed && c.accuses; });
  if (!any_accuser) return true;

  std::vector<std::uint64_t> adj(replied1_.size(), 0);
  bool any_edge = false;
  for (std::size_t i = 0; i < replied1_.size(); ++i) {
    if (!(responders & (1ULL << i))) continue;
    for (std::size_t k = i + 1; k < replied1_.size(); ++k) {
      if (!(responders & (1ULL << k))) continue;
      if (conflict(i, k) || conflict(k, i)) {
        adj[i] |= 1ULL << k;
        adj[k] |= 1ULL << i;
        any_edge = true;
      }
    }
  }
  if (!any_edge) return true;
  return has_independent_set(adj, responders, res_.quorum());
}

void RegularReader::start_round2(net::Context& ctx) {
  phase_ = Phase::Round2;
  ++tsr_;
  for (int i = 0; i < res_.num_objects; ++i) {
    const auto ui = static_cast<std::size_t>(i);
    ctx.send(topo_.object(i),
             wire::HistReadMsg{2, tsr_, request_cache_ts_, have_[ui]});
  }
}

void RegularReader::try_finish(net::Context& ctx) {
  if (phase_ != Phase::Round2) return;
  // Figure 6 lines 14-16, plus the Section 5.1 cache fallback when C drains.
  // The fallback is sound for both variants: the cache is the last returned
  // value, and any write completed before this read either exceeds it (then
  // it is a candidate -- the mirrors cover everything above the cache -- and
  // with >= S-t-b correct holders it cannot be invalidated, so C does not
  // drain) or is covered by returning the cache itself.
  bool any_live = false;
  Ts max_ts = 0;
  for (const auto& cand : candidates_) {
    if (cand.removed) continue;
    any_live = true;
    max_ts = std::max(max_ts, cand.tuple.tsval.ts);
  }
  if (!any_live) {
    diag_.returned_from_cache = true;
    complete(ctx, cache_, /*from_cache=*/true);
    return;
  }
  for (const auto& cand : candidates_) {
    if (cand.removed || cand.tuple.tsval.ts != max_ts) continue;
    if (is_safe(cand.tuple)) {
      complete(ctx, cand.tuple.tsval, /*from_cache=*/false);
      return;
    }
  }
}

void RegularReader::complete(net::Context& ctx, TsVal v, bool from_cache) {
  phase_ = Phase::Idle;
  cache_ = v;  // Section 5.1: remember the last returned value
  // Reader-side GC mirroring the objects' watermark rule: slots below the
  // cache can only ever matter as denials against candidates older than a
  // value this reader already returned, and a missing slot denies too.
  for (auto& mir : mirror_) {
    mir.erase(mir.begin(), mir.lower_bound(cache_.ts));
  }
  ReadResult result;
  result.tsval = std::move(v);
  result.rounds = 2;
  result.invoked_at = invoked_at_;
  result.completed_at = ctx.now();
  result.returned_default = from_cache;
  auto cb = std::move(cb_);
  cb_ = nullptr;
  if (cb) cb(result);
}

}  // namespace rr::core
