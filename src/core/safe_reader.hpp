// Reader automaton of the SWMR *safe* storage (paper Figure 4).
//
// The READ takes exactly two communication round-trips. In both rounds the
// reader *writes* a fresh timestamp into the objects' tsr[j] fields and reads
// back their <pw, w> fields. The stored timestamps let the reader convict
// liars: every written tuple embeds the reader-timestamp rows the writer
// harvested in its PW round (currenttsrarray), so a tuple claiming that
// object i reported a reader timestamp higher than the reader ever issued
// proves that the tuple's reporter or object i is malicious -- the round-1
// "conflict" predicate. Round 2 then waits until the highest candidate is
// vouched for by b+1 objects (safe) or until the candidate set drains.
//
// Key liveness subtlety faithfully reproduced from the paper: each round
// sends one batch of messages, but the *waits* are predicate-driven and may
// consume replies from more than S - t objects (every correct object's reply
// eventually arrives on the reliable channels). This is how a 2-round read
// coexists with the fact that any fixed quorum of S - t replies can be
// uninformative.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "core/client_api.hpp"
#include "core/client_types.hpp"
#include "net/process.hpp"

namespace rr::core {

class SafeReader : public ReaderClient {
 public:
  SafeReader(const Resilience& res, const Topology& topo, int reader_index);

  /// Invokes READ(). One operation at a time per client.
  void read(net::Context& ctx, ReadCallback cb) override;

  void on_message(net::Context& ctx, ProcessId from,
                  const wire::Message& msg) override;

  [[nodiscard]] bool busy() const { return phase_ != Phase::Idle; }
  [[nodiscard]] int reader_index() const { return reader_index_; }

  /// Diagnostics: number of replies consumed by the last completed read,
  /// and whether the round-1 conflict filter ever rejected a quorum.
  struct Diag {
    int round1_acks{0};
    int round2_acks{0};
    int conflicts_seen{0};
    int candidates_added{0};
    int candidates_removed{0};
  };
  [[nodiscard]] const Diag& diag() const { return diag_; }

 private:
  enum class Phase { Idle, Round1, Round2 };

  /// Everything object i reported during the current read. Byzantine objects
  /// may report several distinct tuples; sets are per-object, so a lying
  /// object still counts only once in every cardinality predicate.
  struct ObjReports {
    bool responded_round1{false};
    std::vector<WTuple> w_round1;   ///< distinct tuples in round-1 w fields
    std::vector<WTuple> w_any;      ///< distinct tuples in w fields, any round
    std::vector<TsVal> pw_any;      ///< distinct pairs in pw fields, any round
  };

  struct Candidate {
    WTuple tuple;
    bool removed{false};
  };

  void handle_ack(net::Context& ctx, ProcessId from,
                  const wire::ReadAckMsg& m);
  void record_reports(std::size_t i, const wire::ReadAckMsg& m, bool round1);
  void add_candidate(const WTuple& w);
  void sweep_removals();

  [[nodiscard]] bool conflict(std::size_t i, std::size_t k) const;
  [[nodiscard]] bool round1_complete() const;
  void start_round2(net::Context& ctx);

  [[nodiscard]] bool vouches(const ObjReports& rep, const WTuple& c) const;
  [[nodiscard]] bool is_safe(const WTuple& c) const;
  void try_finish(net::Context& ctx);
  void complete(net::Context& ctx, TsVal v, bool returned_default);

  Resilience res_;
  Topology topo_;
  int reader_index_;

  // Persistent across reads (Figure 4 line 6).
  ReaderTs tsr_{0};

  // Per-read state.
  Phase phase_{Phase::Idle};
  ReaderTs tsr_first_round_{0};  ///< the paper's tsrFR
  std::vector<ObjReports> reports_;
  std::vector<Candidate> candidates_;
  ReadCallback cb_;
  Time invoked_at_{0};
  Diag diag_{};
};

}  // namespace rr::core
