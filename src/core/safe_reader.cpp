#include "core/safe_reader.hpp"

#include <algorithm>
#include <utility>

#include "common/assert.hpp"
#include "common/graph.hpp"

namespace rr::core {
namespace {

template <typename T>
bool contains(const std::vector<T>& xs, const T& x) {
  return std::find(xs.begin(), xs.end(), x) != xs.end();
}

template <typename T>
void add_unique(std::vector<T>& xs, const T& x) {
  if (!contains(xs, x)) xs.push_back(x);
}

}  // namespace

SafeReader::SafeReader(const Resilience& res, const Topology& topo,
                       int reader_index)
    : res_(res), topo_(topo), reader_index_(reader_index) {
  RR_ASSERT(res.valid());
  RR_ASSERT(reader_index >= 0 && reader_index < res.num_readers);
  RR_ASSERT_MSG(res.num_objects <= 64,
                "conflict-quorum search uses 64-bit vertex masks");
}

void SafeReader::read(net::Context& ctx, ReadCallback cb) {
  RR_ASSERT_MSG(phase_ == Phase::Idle,
                "READ invoked while previous READ in progress");
  // Figure 4 lines 7-10.
  reports_.assign(static_cast<std::size_t>(res_.num_objects), ObjReports{});
  candidates_.clear();
  cb_ = std::move(cb);
  invoked_at_ = ctx.now();
  diag_ = Diag{};
  tsr_first_round_ = ++tsr_;
  phase_ = Phase::Round1;
  for (int i = 0; i < res_.num_objects; ++i) {
    ctx.send(topo_.object(i), wire::ReadMsg{1, tsr_, 0});
  }
}

void SafeReader::on_message(net::Context& ctx, ProcessId from,
                            const wire::Message& msg) {
  if (const auto* ack = std::get_if<wire::ReadAckMsg>(&msg)) {
    handle_ack(ctx, from, *ack);
  }
}

void SafeReader::handle_ack(net::Context& ctx, ProcessId from,
                            const wire::ReadAckMsg& m) {
  if (!topo_.is_object(from)) return;
  const auto i = static_cast<std::size_t>(topo_.object_index(from));
  // Acks are pattern-matched against the reader's *current* timestamp
  // (Figure 4 lines 21/25 match READk_ACK<tsr'_j, ...>): replies belonging
  // to earlier rounds or earlier reads are dropped.
  if (phase_ == Phase::Round1 && m.round == 1 && m.tsr == tsr_first_round_) {
    ++diag_.round1_acks;
    record_reports(i, m, /*round1=*/true);
    add_candidate(m.w);  // Figure 4 line 24
    reports_[i].responded_round1 = true;
    sweep_removals();
    if (round1_complete()) {
      start_round2(ctx);
      try_finish(ctx);  // round-1 evidence may already satisfy line 14
    }
  } else if (phase_ == Phase::Round2 && m.round == 2 &&
             m.tsr == tsr_first_round_ + 1) {
    ++diag_.round2_acks;
    record_reports(i, m, /*round1=*/false);
    sweep_removals();
    try_finish(ctx);
  }
}

void SafeReader::record_reports(std::size_t i, const wire::ReadAckMsg& m,
                                bool round1) {
  auto& rep = reports_[i];
  if (round1) add_unique(rep.w_round1, m.w);
  add_unique(rep.w_any, m.w);
  add_unique(rep.pw_any, m.pw);
}

void SafeReader::add_candidate(const WTuple& w) {
  for (const auto& c : candidates_) {
    if (c.tuple == w) return;  // already known (possibly already removed;
                               // removal is permanent -- RespondedWO only
                               // ever grows, so re-adding cannot resurrect)
  }
  candidates_.push_back(Candidate{w, false});
  ++diag_.candidates_added;
}

void SafeReader::sweep_removals() {
  // Figure 4 lines 27-28: drop any candidate that t+b+1 objects responded
  // without (in their w field, in any round of this read).
  const int threshold = res_.t + res_.b + 1;
  for (auto& cand : candidates_) {
    if (cand.removed) continue;
    int responded_without = 0;
    for (const auto& rep : reports_) {
      const bool has_other = std::any_of(
          rep.w_any.begin(), rep.w_any.end(),
          [&](const WTuple& w) { return !(w == cand.tuple); });
      if (has_other) ++responded_without;
    }
    if (responded_without >= threshold) {
      cand.removed = true;
      ++diag_.candidates_removed;
    }
  }
}

bool SafeReader::conflict(std::size_t i, std::size_t k) const {
  // Figure 4 line 1: object k reported (in round 1) a candidate tuple whose
  // embedded reader-timestamp row accuses object i of having reported a
  // timestamp this reader has not issued yet. At least one of i, k lies.
  const auto j = static_cast<std::size_t>(reader_index_);
  for (const auto& cand : candidates_) {
    if (cand.removed) continue;
    if (!contains(reports_[k].w_round1, cand.tuple)) continue;
    const auto& arr = cand.tuple.tsrarray;
    if (i >= arr.size() || !arr[i].has_value()) continue;
    const auto& row = *arr[i];
    if (j >= row.size()) continue;
    if (row[j] > tsr_first_round_) return true;
  }
  return false;
}

bool SafeReader::round1_complete() const {
  // Figure 4 line 11: exists Resp1OK subseteq Resp1 with |Resp1OK| >= S-t
  // and no pairwise conflict. Encoded as an independent-set query on the
  // (symmetrized) conflict graph over the responders.
  std::uint64_t responders = 0;
  int count = 0;
  for (std::size_t i = 0; i < reports_.size(); ++i) {
    if (reports_[i].responded_round1) {
      responders |= 1ULL << i;
      ++count;
    }
  }
  if (count < res_.quorum()) return false;

  std::vector<std::uint64_t> adj(reports_.size(), 0);
  bool any_edge = false;
  for (std::size_t i = 0; i < reports_.size(); ++i) {
    if (!(responders & (1ULL << i))) continue;
    for (std::size_t k = i + 1; k < reports_.size(); ++k) {
      if (!(responders & (1ULL << k))) continue;
      if (conflict(i, k) || conflict(k, i)) {
        adj[i] |= 1ULL << k;
        adj[k] |= 1ULL << i;
        any_edge = true;
      }
    }
  }
  if (!any_edge) return true;
  return has_independent_set(adj, responders, res_.quorum());
}

void SafeReader::start_round2(net::Context& ctx) {
  // Figure 4 lines 12-13.
  phase_ = Phase::Round2;
  ++tsr_;
  for (int i = 0; i < res_.num_objects; ++i) {
    ctx.send(topo_.object(i), wire::ReadMsg{2, tsr_, 0});
  }
}

bool SafeReader::vouches(const ObjReports& rep, const WTuple& c) const {
  // An object vouches for candidate c if it reported c itself (w field),
  // c's pair (pw field), or *any* value with a strictly higher timestamp
  // (Figure 4 line 3 and the prose of Section 4.2).
  for (const auto& w : rep.w_any) {
    if (w == c || w.tsval.ts > c.tsval.ts) return true;
  }
  for (const auto& pw : rep.pw_any) {
    if (pw == c.tsval || pw.ts > c.tsval.ts) return true;
  }
  return false;
}

bool SafeReader::is_safe(const WTuple& c) const {
  int vouchers = 0;
  for (const auto& rep : reports_) {
    if (vouches(rep, c)) ++vouchers;
  }
  return vouchers >= res_.b + 1;
}

void SafeReader::try_finish(net::Context& ctx) {
  if (phase_ != Phase::Round2) return;
  // Figure 4 lines 14-20.
  bool any_live = false;
  Ts max_ts = 0;
  for (const auto& cand : candidates_) {
    if (cand.removed) continue;
    any_live = true;
    max_ts = std::max(max_ts, cand.tuple.tsval.ts);
  }
  if (!any_live) {
    // C drained: only possible when the read is concurrent with writes
    // (Theorem 1 shows the latest completely-written tuple is never
    // removed); return the default value v0.
    complete(ctx, TsVal::bottom(), /*returned_default=*/true);
    return;
  }
  for (const auto& cand : candidates_) {
    if (cand.removed || cand.tuple.tsval.ts != max_ts) continue;
    if (is_safe(cand.tuple)) {
      complete(ctx, cand.tuple.tsval, /*returned_default=*/false);
      return;
    }
  }
}

void SafeReader::complete(net::Context& ctx, TsVal v, bool returned_default) {
  phase_ = Phase::Idle;
  ReadResult result;
  result.tsval = std::move(v);
  result.rounds = 2;
  result.invoked_at = invoked_at_;
  result.completed_at = ctx.now();
  result.returned_default = returned_default;
  auto cb = std::move(cb_);
  cb_ = nullptr;
  if (cb) cb(result);
}

}  // namespace rr::core
